"""Tests for the runtime race sanitizer (race.unsync-access)."""

import importlib.util
import pathlib
import sys
import threading

from repro.analysis.dynrace import (RaceSanitizer, activate, active,
                                    deactivate, instrument_telemetry,
                                    schedule_torture)

FIXTURE = (pathlib.Path(__file__).parent / "fixtures" / "racy_counter.py")


def load_fixture():
    spec = importlib.util.spec_from_file_location("racy_counter", FIXTURE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_threads(*targets, repeat=1):
    threads = [threading.Thread(target=t) for t in targets * repeat]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMechanics:
    def test_instrumented_lock_tracks_lockset(self):
        san = RaceSanitizer()
        lock = san.instrument_lock(threading.Lock(), "L")
        assert san.lockset() == frozenset()
        with lock:
            assert san.lockset() == frozenset({"L"})
        assert san.lockset() == frozenset()

    def test_proxy_delegates_and_records(self):
        san = RaceSanitizer()
        proxy = san.watch([], name="rows", writes={"append"})
        proxy.append(1)
        proxy.append(2)
        assert len(proxy) == 2
        assert list(proxy) == [1, 2]
        combos = san._combos["rows"]
        assert any(key[3] == "write" for key in combos)

    def test_method_window_includes_internal_locks(self):
        # A method that takes its own lock must not look unsynchronized:
        # the effective lockset covers locks acquired *during* the call.
        class SelfLocked:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def bump(self):
                with self._lock:
                    self.n += 1

        san = RaceSanitizer()
        proxy = san.watch(SelfLocked(), name="obj", writes={"bump"})
        run_threads(lambda: [proxy.bump() for _ in range(50)],
                    lambda: [proxy.bump() for _ in range(50)])
        assert san.races() == []

    def test_single_thread_never_races(self):
        san = RaceSanitizer()
        proxy = san.watch([], name="rows", writes={"append"})
        for k in range(10):
            proxy.append(k)
        assert san.races() == []

    def test_construction_time_accesses_excluded(self):
        # Thread A populates before the object is shared; only locked
        # accesses happen after B appears — the Eraser first-thread
        # exclusion must keep this quiet.
        san = RaceSanitizer()
        lock = san.instrument_lock(threading.Lock(), "L")
        proxy = san.watch([], name="rows", writes={"append"})
        proxy.append("setup")       # unlocked, pre-sharing

        def locked_appends():
            for _ in range(20):
                with lock:
                    proxy.append("x")

        run_threads(locked_appends, locked_appends)
        assert san.races() == []

    def test_reset_forgets_accesses(self):
        san = RaceSanitizer()
        proxy = san.watch([], name="rows", writes={"append"})
        proxy.append(1)
        san.reset()
        assert san._combos == {}

    def test_schedule_torture_restores_interval(self):
        old = sys.getswitchinterval()
        with schedule_torture(1e-5):
            # setswitchinterval stores a rounded tick count; compare
            # with a tolerance instead of exact equality.
            assert abs(sys.getswitchinterval() - 1e-5) < 1e-7
        assert sys.getswitchinterval() == old

    def test_activation_lifecycle(self):
        assert active() is None
        san = activate(RaceSanitizer())
        try:
            assert active() is san
        finally:
            deactivate()
        assert active() is None


class TestFixtureRace:
    def test_fixture_race_is_observed(self):
        # The same seeded fixture the static pass flags from source must
        # race under the sanitizer.  Events force a deterministic
        # overlap (locked write -> unlocked write -> locked write), so
        # both access shapes are live post-sharing on every run.
        counter = load_fixture().RacyCounter()
        san = RaceSanitizer()
        proxy = san.watch(counter, name="counter",
                          writes={"add", "add_fast"})
        a_went, b_went = threading.Event(), threading.Event()

        def locked_writer():
            proxy.add(1)
            a_went.set()
            b_went.wait(5.0)
            proxy.add(1)

        def unlocked_writer():
            a_went.wait(5.0)
            proxy.add_fast(1)
            b_went.set()

        with schedule_torture():
            run_threads(locked_writer, unlocked_writer)
        races = san.races()
        assert races, "unguarded add_fast vs locked add must conflict"
        assert {"add", "add_fast"} == {races[0].attr_a, races[0].attr_b}
        diags = san.diagnostics()
        assert {d.rule for d in diags} == {"race.unsync-access"}
        assert "candidate" in san.summary()

    def test_fixture_locked_paths_only_clean(self):
        counter = load_fixture().RacyCounter()
        san = RaceSanitizer()
        proxy = san.watch(counter, name="counter",
                          writes={"add", "add_fast"})
        with schedule_torture():
            run_threads(lambda: [proxy.add(1) for _ in range(200)],
                        lambda: [proxy.add(1) for _ in range(200)])
        assert proxy.value() == 400
        assert san.races() == []


class TestTortureObs:
    """Schedule-torture stress over the real telemetry objects."""

    N_THREADS = 4
    N_EMITS = 100

    def test_run_logger_emit_is_race_free(self):
        from repro.obs import RunLogger

        san = RaceSanitizer()
        proxy = san.watch(RunLogger(), name="run_logger")

        def emitter():
            for k in range(self.N_EMITS):
                proxy.emit("evaluation", index=k)

        with schedule_torture():
            run_threads(*[emitter] * self.N_THREADS)
        assert len(proxy) == self.N_THREADS * self.N_EMITS
        assert san.races() == []

    def test_tracer_spans_from_threads_are_race_free(self):
        from repro.obs import Tracer

        tracer = Tracer()
        san = RaceSanitizer()
        proxy = san.watch(tracer, name="tracer")

        def spanner():
            for _ in range(self.N_EMITS):
                with proxy.span("work"):
                    pass

        with schedule_torture():
            run_threads(*[spanner] * self.N_THREADS)
        assert len(tracer.roots()) == self.N_THREADS * self.N_EMITS
        assert san.races() == []

    def test_heartbeat_path_is_race_free(self):
        # The motivating concurrency: the pool heartbeat daemon sharing
        # metrics + run logger with the "optimizer" thread.
        import time

        from repro.core.parallel import _Heartbeat
        from repro.obs import MetricsRegistry, RunLogger, Telemetry

        telemetry = Telemetry(metrics=MetricsRegistry(),
                              run_logger=RunLogger())
        san = RaceSanitizer()
        instrument_telemetry(telemetry, sanitizer=san)

        with schedule_torture():
            hb = _Heartbeat(telemetry, interval_s=0.002, n=8, n_workers=2)
            try:
                deadline = time.perf_counter() + 0.25
                while time.perf_counter() < deadline:
                    telemetry.inc("sims_total", kind="actor")
                    telemetry.observe("sim_latency_s", 0.01, kind="actor")
            finally:
                hb.stop()
        beats = telemetry.run_logger.events("heartbeat")
        assert beats, "heartbeat thread should have emitted"
        assert telemetry.metrics.gauge_value("pool_workers_busy") == 2
        assert san.races() == []


class TestInstrumentTelemetry:
    def test_channels_swapped_in_place(self):
        from repro.analysis.dynrace import WatchProxy
        from repro.obs import MetricsRegistry, RunLogger, Telemetry

        telemetry = Telemetry(metrics=MetricsRegistry(),
                              run_logger=RunLogger())
        san = RaceSanitizer()
        out = instrument_telemetry(telemetry, sanitizer=san)
        assert out is telemetry
        assert isinstance(telemetry.metrics, WatchProxy)
        assert isinstance(telemetry.run_logger, WatchProxy)
        assert telemetry.tracer is None

    def test_noop_without_active_sanitizer(self):
        from repro.obs import RunLogger, Telemetry

        telemetry = Telemetry(run_logger=RunLogger())
        logger = telemetry.run_logger
        assert instrument_telemetry(telemetry) is telemetry
        assert telemetry.run_logger is logger

    def test_none_bundle_is_noop(self):
        assert instrument_telemetry(None, sanitizer=RaceSanitizer()) is None
