"""Tests for the electrical rule checks: one minimal netlist per rule."""

import math

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.erc import (
    assert_clean,
    gate_errors,
    is_simulatable,
    lint_circuit,
    lint_deck,
    run_erc,
)
from repro.spice import Circuit, NMOS_180
from repro.spice.exceptions import NetlistError


def rules(diags):
    return {d.rule for d in diags}


def divider():
    ckt = Circuit()
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_resistor("R2", "out", "0", 1e3)
    return ckt


class TestTopologyRules:
    def test_empty(self):
        diags = run_erc(Circuit())
        assert rules(diags) == {"erc.empty"}
        assert diags[0].severity == Severity.ERROR

    def test_no_ground(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "b", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        assert "erc.no-ground" in rules(run_erc(ckt))

    def test_floating_node(self):
        ckt = divider()
        ckt.add_resistor("R3", "out", "dangle", 1e3)
        diags = run_erc(ckt)
        assert rules(diags) == {"erc.floating-node"}
        assert any(d.location == "dangle" for d in diags)

    def test_source_open(self):
        ckt = divider()
        ckt.add_isource("I1", "nowhere", "0", 1e-3)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.source-open"]
        assert len(diags) == 1
        assert diags[0].location == "I1"
        # A dangling source is reported as source-open, not floating-node.
        assert "erc.floating-node" not in rules(run_erc(ckt))

    def test_no_dc_path(self):
        ckt = divider()
        ckt.add_capacitor("C1", "out", "island", 1e-12)
        ckt.add_capacitor("C2", "0", "island", 1e-12)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.no-dc-path"]
        assert [d.location for d in diags] == ["island"]

    def test_mosfet_gate_gives_no_dc_path(self):
        # A MOSFET gate is DC-isolated: a node driven only through gates
        # has no DC path even though the device "touches" it.
        ckt = divider()
        ckt.add_capacitor("Cg", "out", "gate", 1e-12)
        ckt.add_mosfet("M1", "in", "gate", "0", "0", NMOS_180,
                       w=1e-6, l=1e-6)
        assert "erc.no-dc-path" in rules(run_erc(ckt))

    def test_vsource_loop(self):
        ckt = divider()
        ckt.add_vsource("V2", "in", "0", 2.0)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.vsource-loop"]
        assert len(diags) == 1
        assert "V1" in diags[0].message and "V2" in diags[0].message

    def test_inductor_closes_vsource_loop(self):
        ckt = divider()
        ckt.add_inductor("L1", "in", "0", 1e-9)
        assert "erc.vsource-loop" in rules(run_erc(ckt))

    def test_source_short(self):
        ckt = divider()
        ckt.add_vsource("V2", "out", "out", 1.0)
        assert "erc.source-short" in rules(run_erc(ckt))


class TestDeviceRules:
    def test_mosfet_geometry_error(self):
        ckt = divider()
        # NaN slips past the constructor's `w <= 0` guard; the ERC is the
        # only check that catches it before the MNA matrix fills with NaN.
        ckt.add_mosfet("M1", "in", "in", "0", "0", NMOS_180,
                       w=math.nan, l=1e-6)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.mosfet-geometry"]
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR

    def test_mosfet_geometry_out_of_range_is_warning(self):
        ckt = divider()
        ckt.add_mosfet("M1", "in", "in", "0", "0", NMOS_180,
                       w=1.0, l=1e-6)      # a one-meter-wide transistor
        diags = [d for d in run_erc(ckt) if d.rule == "erc.mosfet-geometry"]
        assert diags and diags[0].severity == Severity.WARNING

    def test_passive_nan_is_error(self):
        ckt = divider()
        ckt.add_resistor("R3", "in", "0", math.nan)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.passive-value"]
        assert diags and diags[0].severity == Severity.ERROR

    def test_passive_nonpositive_is_error(self):
        # Constructors reject nonpositive values, but parameter sweeps can
        # mutate them afterwards; the ERC must still catch it.
        ckt = divider()
        ckt.add_capacitor("C1", "in", "0", 1e-12)
        ckt["C1"].capacitance = -1e-12
        diags = [d for d in run_erc(ckt) if d.rule == "erc.passive-value"]
        assert diags and diags[0].severity == Severity.ERROR

    def test_passive_absurd_magnitude_is_warning(self):
        ckt = divider()
        ckt.add_capacitor("C1", "in", "0", 1.0)   # a one-farad on-chip cap
        diags = [d for d in run_erc(ckt) if d.rule == "erc.passive-value"]
        assert diags and diags[0].severity == Severity.WARNING

    def test_name_collision_is_warning(self):
        ckt = divider()
        ckt.add_resistor("r1", "in", "0", 1e3)
        diags = [d for d in run_erc(ckt) if d.rule == "erc.name-collision"]
        assert diags and diags[0].severity == Severity.WARNING
        assert is_simulatable(ckt)


class TestDeckLint:
    def test_milli_ohm_suffix(self):
        diags = lint_deck("V1 a 0 1\nR1 a 0 10m\n.end\n")
        suffix = [d for d in diags if d.rule == "erc.unit-suffix"]
        assert suffix and "meg" in suffix[0].message

    def test_megaohm_spelled_right_is_silent(self):
        diags = lint_deck("V1 a 0 1\nR1 a 0 10meg\n.end\n")
        assert "erc.unit-suffix" not in rules(diags)

    def test_unknown_suffix(self):
        diags = lint_deck("V1 a 0 1\nC1 a 0 10qq\n.end\n")
        assert "erc.unit-suffix" in rules(diags)

    def test_parse_error(self):
        diags = lint_deck("R1 a\n")
        assert rules(diags) == {"erc.parse-error"}

    def test_clean_deck(self):
        diags = lint_deck("V1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n.end\n")
        assert diags == []


class TestGateAndLegacyApi:
    def test_gate_errors_drops_warnings(self):
        ckt = divider()
        ckt.add_resistor("r1", "in", "0", 1e3)    # warning only
        assert gate_errors(ckt) == []
        ckt.add_resistor("R9", "in", "dangle", 1e3)
        assert rules(gate_errors(ckt)) == {"erc.floating-node"}

    def test_lint_circuit_returns_strings(self):
        ckt = Circuit()
        assert lint_circuit(ckt) == ["circuit has no elements"]

    def test_assert_clean_raises_with_findings(self):
        with pytest.raises(NetlistError, match="no elements"):
            assert_clean(Circuit())
        assert_clean(divider())


class TestPaperCircuitsClean:
    def test_ota_clean(self):
        from repro.circuits.ota import build_ota
        from tests.circuits.test_ota import GOOD

        assert_clean(build_ota(GOOD))
        assert run_erc(build_ota(GOOD)) == []

    def test_tia_clean(self):
        from repro.circuits.tia import build_tia
        from tests.circuits.test_tia import GOOD

        assert_clean(build_tia(GOOD))
        assert run_erc(build_tia(GOOD)) == []

    def test_ldo_clean(self):
        from repro.circuits.ldo import build_ldo
        from tests.circuits.test_ldo import GOOD

        assert_clean(build_ldo(GOOD))
        assert run_erc(build_ldo(GOOD)) == []

    def test_task_lint_design_clean_mid_space(self):
        import numpy as np

        from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA

        for task in (TwoStageOTA(), ThreeStageTIA(), LDORegulator()):
            assert task.lint_design(np.full(task.d, 0.5)) == []


class TestCircuitPublicApi:
    def test_canonical_node(self):
        ckt = divider()
        assert ckt.canonical_node("gnd") == "0"
        assert ckt.canonical_node("in") == "in"

    def test_connectivity_uses_canonical_names(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "gnd", 1.0)
        ckt.add_resistor("R1", "in", "GND", 1e3)
        pairs = {elem.name: nodes for elem, nodes in ckt.connectivity()}
        assert pairs["V1"] == ("in", "0")
        assert pairs["R1"] == ("in", "0")

    def test_spice_lint_shim_reexports(self):
        from repro.analysis import erc
        from repro.spice import lint as shim

        assert shim.lint_circuit is erc.lint_circuit
        assert shim.assert_clean is erc.assert_clean
        assert shim.run_erc is erc.run_erc
