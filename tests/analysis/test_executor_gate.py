"""Tests for the pre-simulation ERC gate in SimulationExecutor."""

import numpy as np

from repro.circuits.ota import TwoStageOTA
from repro.core.parallel import SimulationExecutor
from repro.obs import MetricsRegistry, RunLogger, Telemetry
from repro.resilience.policy import penalty_metrics


class BrokenNetlistOTA(TwoStageOTA):
    """OTA whose netlist builder always emits a floating node."""

    def __init__(self):
        super().__init__()
        self.simulated = 0

    def build_netlist(self, params):
        ckt = super().build_netlist(params)
        ckt.add_resistor("Rbad", "dangle_a", "dangle_b", 1e3)
        return ckt

    def measure(self, params):
        self.simulated += 1
        return super().measure(params)


class RaisingBuilderOTA(TwoStageOTA):
    def build_netlist(self, params):
        raise RuntimeError("builder exploded")


def telemetry():
    return Telemetry(metrics=MetricsRegistry(), run_logger=RunLogger())


class TestGate:
    def test_clean_designs_pass_through(self):
        task = TwoStageOTA()
        with SimulationExecutor(task) as ex:
            out = ex.evaluate_batch(np.full((2, task.d), 0.5), kind="init")
        assert out.shape == (2, task.m + 1)
        assert ex.last_lint_rejections == {}

    def test_broken_designs_never_simulate(self):
        task = BrokenNetlistOTA()
        obs = telemetry()
        with SimulationExecutor(task, telemetry=obs) as ex:
            out = ex.evaluate_batch(np.full((2, task.d), 0.5),
                                    kind="actor")
        assert task.simulated == 0
        assert sorted(ex.last_lint_rejections) == [0, 1]
        assert np.allclose(out, penalty_metrics(task))
        events = list(obs.run_logger.events("lint_rejected"))
        assert len(events) == 2
        assert "erc.floating-node" in events[0].payload["rules"]

    def test_mixed_batch_merges_in_order(self):
        # Same task; corrupt one design so only it gets gated.
        task = TwoStageOTA()

        class OneBadOTA(TwoStageOTA):
            def lint_design(self, u):
                if u[0] > 0.9:
                    from repro.analysis.erc import ERC_RULES
                    return [ERC_RULES.diag("erc.no-ground", "forced")]
                return []

        bad_task = OneBadOTA()
        u = np.full((3, task.d), 0.5)
        u[1, 0] = 1.0
        with SimulationExecutor(bad_task) as ex:
            out = ex.evaluate_batch(u, kind="ns")
        assert list(ex.last_lint_rejections) == [1]
        assert np.allclose(out[1], penalty_metrics(bad_task))
        # Rows 0 and 2 are real simulations of the same design.
        assert np.allclose(out[0], out[2])
        assert not np.allclose(out[0], penalty_metrics(bad_task))

    def test_raising_builder_is_rejected(self):
        task = RaisingBuilderOTA()
        with SimulationExecutor(task) as ex:
            out = ex.evaluate_batch(np.full((1, task.d), 0.5))
        assert list(ex.last_lint_rejections) == [0]
        assert ex.last_lint_rejections[0][0].rule == "erc.parse-error"
        assert np.allclose(out, penalty_metrics(task))

    def test_opt_out(self):
        task = BrokenNetlistOTA()
        with SimulationExecutor(task, lint_gate=False) as ex:
            ex.evaluate_batch(np.full((1, task.d), 0.5))
        assert task.simulated == 1
        assert ex.last_lint_rejections == {}

    def test_counter_increments(self):
        task = BrokenNetlistOTA()
        obs = telemetry()
        with SimulationExecutor(task, telemetry=obs) as ex:
            ex.evaluate_batch(np.full((2, task.d), 0.5), kind="actor")
        snap = obs.metrics.snapshot()
        (key, value), = [(k, v) for k, v in snap["counters"].items()
                         if "lint_rejections_total" in k]
        assert value == 2
        assert "actor" in key

    def test_tasks_without_lint_design_skip_gate(self):
        from repro.core.synthetic import ConstrainedSphere

        task = ConstrainedSphere()
        with SimulationExecutor(task) as ex:
            out = ex.evaluate_batch(np.full((2, task.d), 0.5))
        assert out.shape == (2, task.m + 1)
        assert ex.last_lint_rejections == {}
