"""Tests for the shared AST dataflow core: scope trees, name
resolution (including Python's class-scope skip), mutation/read
tracking, and the best-effort call graph."""

import textwrap

from repro.analysis.flow import CallGraph, build_module, dotted_name


def mod(snippet, path="m.py"):
    return build_module(textwrap.dedent(snippet), path=path)


def fn(m, name):
    for scope in m.scopes:
        if scope.name == name and not scope.is_class:
            return scope
    raise AssertionError(f"no function scope {name!r}")


class TestScopeTree:
    def test_module_function_nesting(self):
        m = mod("""
            x = 1
            def outer():
                def inner():
                    return x
                return inner
        """)
        outer = fn(m, "outer")
        inner = fn(m, "inner")
        assert inner.parent is outer
        assert outer.parent is m.module_scope
        assert m.module_scope.is_module

    def test_params_are_bindings(self):
        m = mod("def f(a, b=1, *args, **kw):\n    return a\n")
        f = fn(m, "f")
        assert {"a", "b", "args", "kw"} <= set(f.params)
        assert f.binds("a")

    def test_param_annotations_recorded(self):
        m = mod("""
            import numpy as np
            def f(rng: np.random.Generator):
                return rng
        """)
        assert fn(m, "f").param_annotations["rng"].endswith("Generator")


class TestResolution:
    def test_local_binding_resolves_to_self(self):
        m = mod("def f():\n    y = 2\n    return y\n")
        f = fn(m, "f")
        assert f.resolve("y") is f

    def test_free_variable_resolves_to_enclosing(self):
        m = mod("""
            def outer():
                z = []
                def inner():
                    return z
                return inner
        """)
        assert fn(m, "inner").resolve("z") is fn(m, "outer")

    def test_module_global_resolves_to_module(self):
        m = mod("g = 1\ndef f():\n    return g\n")
        assert fn(m, "f").resolve("g") is m.module_scope

    def test_class_scope_is_skipped(self):
        # Python closure resolution skips class bodies: a method reading
        # `attr` does NOT see the class attribute of the same name.
        m = mod("""
            attr = 'module'
            class C:
                attr = 'class'
                def method(self):
                    return attr
        """)
        assert fn(m, "method").resolve("attr") is m.module_scope

    def test_global_statement_forces_module(self):
        m = mod("""
            g = 1
            def outer():
                g = 2
                def inner():
                    global g
                    g = 3
                return inner
        """)
        assert fn(m, "inner").resolve("g") is m.module_scope

    def test_unknown_name_resolves_to_none(self):
        m = mod("def f():\n    return undefined_thing\n")
        assert fn(m, "f").resolve("undefined_thing") is None


class TestMutationsAndCalls:
    def test_method_mutation_recorded(self):
        m = mod("def f():\n    acc = []\n    acc.append(1)\n")
        f = fn(m, "f")
        assert "acc" in f.mutated_names()

    def test_augassign_and_subscript_mutations(self):
        m = mod("""
            def f(d):
                d['k'] = 1
                n = 0
                n += 1
        """)
        names = fn(m, "f").mutated_names()
        assert "d" in names and "n" in names

    def test_call_sites_have_dotted_names(self):
        m = mod("import numpy as np\ndef f():\n    np.random.default_rng()\n")
        callees = {c.callee for c in fn(m, "f").calls}
        assert "np.random.default_rng" in callees

    def test_dotted_name_of_nested_attribute(self):
        import ast

        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(node) == "a.b.c"


class TestCallGraph:
    def test_same_module_resolution(self):
        m = mod("""
            def helper():
                pass
            def caller():
                helper()
        """)
        g = CallGraph([m])
        assert g.resolve_callee(fn(m, "caller"), "helper") is fn(m, "helper")

    def test_reachability_is_transitive(self):
        m = mod("""
            def a():
                b()
            def b():
                c()
            def c():
                pass
        """)
        g = CallGraph([m])
        reached = {s.name for s in g.reachable_from([fn(m, "a")])}
        assert {"a", "b", "c"} <= reached

    def test_cross_module_resolution(self):
        m1 = mod("def shared_helper():\n    pass\n", path="a.py")
        m2 = mod("def caller():\n    shared_helper()\n", path="b.py")
        g = CallGraph([m1, m2])
        assert g.resolve_callee(fn(m2, "caller"), "shared_helper") \
            is fn(m1, "shared_helper")

    def test_ambiguous_callee_unresolved(self):
        m1 = mod("def dup():\n    pass\n", path="a.py")
        m2 = mod("def dup():\n    pass\n", path="b.py")
        m3 = mod("def caller():\n    dup()\n", path="c.py")
        g = CallGraph([m1, m2, m3])
        assert g.resolve_callee(fn(m3, "caller"), "dup") is None
