"""Tests for the union-find / cycle-detection machinery behind the ERC."""

import numpy as np
import pytest

from repro.analysis.graph import UnionFind, bfs_path, find_cycle


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert not uf.connected(0, 1)
        assert uf.find(3) == 3

    def test_union_merges_and_reports(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)   # already joined
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_mask(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert list(uf.component_mask(0)) == [True, True, False, False,
                                              False]
        assert list(uf.component_mask(4)) == [False, False, False, True,
                                              True]

    def test_large_chain_stays_correct(self):
        n = 2000
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.connected(0, n - 1)
        assert int(uf.size[uf.find(0)]) == n

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestBfsPath:
    ADJ = {0: [(1, "a")], 1: [(0, "a"), (2, "b")], 2: [(1, "b")]}

    def test_path_labels(self):
        assert bfs_path(self.ADJ, 0, 2) == ["a", "b"]

    def test_same_node_is_empty_path(self):
        assert bfs_path(self.ADJ, 1, 1) == []

    def test_unreachable_is_none(self):
        assert bfs_path(self.ADJ, 0, 9) is None


class TestFindCycle:
    def test_no_edges(self):
        assert find_cycle([]) is None

    def test_tree_has_no_cycle(self):
        assert find_cycle([(0, 1, "e1"), (1, 2, "e2"), (0, 3, "e3")]) is None

    def test_triangle(self):
        cycle = find_cycle([(0, 1, "e1"), (1, 2, "e2"), (2, 0, "e3")])
        assert sorted(cycle) == ["e1", "e2", "e3"]
        assert cycle[-1] == "e3"   # the edge that closed the loop is last

    def test_parallel_edges_are_a_cycle(self):
        assert find_cycle([(0, 1, "V1"), (0, 1, "V2")]) == ["V1", "V2"]

    def test_self_loop_ignored(self):
        assert find_cycle([(0, 0, "V1"), (0, 1, "V2")]) is None
