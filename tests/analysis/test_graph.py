"""Tests for the union-find / cycle-detection machinery behind the ERC."""

import numpy as np
import pytest

from repro.analysis.graph import UnionFind, bfs_path, find_cycle


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert not uf.connected(0, 1)
        assert uf.find(3) == 3

    def test_union_merges_and_reports(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)   # already joined
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_mask(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert list(uf.component_mask(0)) == [True, True, False, False,
                                              False]
        assert list(uf.component_mask(4)) == [False, False, False, True,
                                              True]

    def test_large_chain_stays_correct(self):
        n = 2000
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.connected(0, n - 1)
        assert int(uf.size[uf.find(0)]) == n

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestBfsPath:
    ADJ = {0: [(1, "a")], 1: [(0, "a"), (2, "b")], 2: [(1, "b")]}

    def test_path_labels(self):
        assert bfs_path(self.ADJ, 0, 2) == ["a", "b"]

    def test_same_node_is_empty_path(self):
        assert bfs_path(self.ADJ, 1, 1) == []

    def test_unreachable_is_none(self):
        assert bfs_path(self.ADJ, 0, 9) is None


class TestFindCycle:
    def test_no_edges(self):
        assert find_cycle([]) is None

    def test_tree_has_no_cycle(self):
        assert find_cycle([(0, 1, "e1"), (1, 2, "e2"), (0, 3, "e3")]) is None

    def test_triangle(self):
        cycle = find_cycle([(0, 1, "e1"), (1, 2, "e2"), (2, 0, "e3")])
        assert sorted(cycle) == ["e1", "e2", "e3"]
        assert cycle[-1] == "e3"   # the edge that closed the loop is last

    def test_parallel_edges_are_a_cycle(self):
        assert find_cycle([(0, 1, "V1"), (0, 1, "V2")]) == ["V1", "V2"]

    def test_self_loop_ignored(self):
        assert find_cycle([(0, 0, "V1"), (0, 1, "V2")]) is None


class TestSelfLoopElements:
    """Self-loop edges: a device with both terminals on one node."""

    def test_union_self_is_noop(self):
        uf = UnionFind(3)
        assert not uf.union(1, 1)
        assert int(uf.size[uf.find(1)]) == 1

    def test_bfs_ignores_self_edges(self):
        adj = {0: [(0, "loop"), (1, "a")], 1: [(0, "a")]}
        assert bfs_path(adj, 0, 1) == ["a"]

    def test_cycle_detection_skips_self_loops_among_real_edges(self):
        edges = [(0, 0, "Vself"), (0, 1, "V1"), (1, 2, "V2")]
        assert find_cycle(edges) is None

    def test_erc_self_loop_resistor_is_an_island(self):
        from repro.analysis.erc import lint_deck

        deck = "V1 in 0 DC 1\nR1 in 0 1k\nR2 x x 1k\n.end\n"
        diags = lint_deck(deck)
        assert [d.rule for d in diags] == ["erc.no-dc-path"]
        assert diags[0].location == "x"

    def test_erc_self_loop_vsource_is_a_short(self):
        from repro.analysis.erc import lint_deck

        deck = "V1 in 0 DC 1\nR1 in 0 1k\nV2 in in DC 0\n.end\n"
        rules = {d.rule for d in lint_deck(deck)}
        assert "erc.source-short" in rules
        # ...and does NOT double-report as a voltage-source loop.
        assert "erc.vsource-loop" not in rules


class TestDisconnectedSubcircuits:
    """Fully disconnected components: every node islanded from ground."""

    def test_union_find_keeps_components_apart(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)      # component A
        uf.union(3, 4)
        uf.union(4, 5)      # component B
        assert not uf.connected(0, 5)
        assert list(uf.component_mask(0)) == [True] * 3 + [False] * 3
        assert list(uf.component_mask(5)) == [False] * 3 + [True] * 3

    def test_bfs_cannot_cross_components(self):
        adj = {0: [(1, "a")], 1: [(0, "a")], 2: [(3, "b")], 3: [(2, "b")]}
        assert bfs_path(adj, 0, 3) is None

    def test_erc_reports_every_islanded_node(self):
        from repro.analysis.erc import lint_deck

        deck = ("V1 in 0 DC 1\nR1 in 0 1k\n"
                "R3 a b 1k\nR4 b a 2k\n.end\n")
        diags = lint_deck(deck)
        assert [d.rule for d in diags] == ["erc.no-dc-path"] * 2
        assert sorted(d.location for d in diags) == ["a", "b"]


class TestCanonicalNodeStability:
    """Node indices come from sorted() over node names: renaming every
    node must not change which *rules* fire (only the names in them)."""

    DECK = ("V1 in 0 DC 1\nR1 in mid 1k\nR2 mid 0 1k\n"
            "C1 mid dangle 1p\n.end\n")

    @staticmethod
    def _rename(deck, mapping):
        out = []
        for line in deck.splitlines():
            parts = line.split()
            out.append(" ".join(mapping.get(p, p) for p in parts))
        return "\n".join(out) + "\n"

    def test_rule_multiset_invariant_under_renaming(self):
        from repro.analysis.erc import lint_deck

        renamed = self._rename(
            self.DECK, {"in": "zz_in", "mid": "aa_mid",
                        "dangle": "qq_dangle"})
        before = sorted(d.rule for d in lint_deck(self.DECK))
        after = sorted(d.rule for d in lint_deck(renamed))
        assert before == after == ["erc.floating-node", "erc.no-dc-path"]

    def test_locations_follow_the_renaming(self):
        from repro.analysis.erc import lint_deck

        renamed = self._rename(self.DECK, {"dangle": "zzz"})
        locs = {d.rule: d.location for d in lint_deck(renamed)}
        assert locs["erc.floating-node"] == "zzz"

    def test_reversed_sort_order_same_verdicts(self):
        # Renaming that inverts the sorted() order of node names must
        # not flip any union-find/cycle verdicts.
        from repro.analysis.erc import lint_deck

        deck = "V1 a 0 DC 1\nV2 b 0 DC 1\nV3 a b DC 0\nR1 a 0 1k\n.end\n"
        flipped = self._rename(deck, {"a": "zz", "b": "aa"})
        assert {d.rule for d in lint_deck(deck)} \
            == {d.rule for d in lint_deck(flipped)} \
            >= {"erc.vsource-loop"}
