"""Tests for the lockset / guarded-by analyzer (flow.lock.*)."""

import pathlib
import textwrap

from repro.analysis.locks import check_paths, check_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def check(snippet, path="m.py"):
    return check_source(textwrap.dedent(snippet), path=path)


def rules(diags):
    return {d.rule for d in diags}


class TestGuardInference:
    def test_unguarded_write_fires(self):
        diags = check("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0
                def add(self, n):
                    with self._lock:
                        self.total = self.total + n
                def add_fast(self, n):
                    self.total = self.total + n
        """)
        assert "flow.lock.unguarded-write" in rules(diags)

    def test_unguarded_read_fires(self):
        diags = check("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0
                def add(self, n):
                    with self._lock:
                        self.total = self.total + n
                def peek(self):
                    return self.total
        """)
        assert "flow.lock.unguarded-read" in rules(diags)

    def test_all_locked_accesses_clean(self):
        diags = check("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0
                def add(self, n):
                    with self._lock:
                        self.total = self.total + n
                def value(self):
                    with self._lock:
                        return self.total
        """)
        assert rules(diags) == set()

    def test_init_writes_neither_infer_nor_fire(self):
        # Construction-time writes are pre-sharing: no guard inference
        # from __init__, no findings inside it.
        diags = check("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def get(self):
                    return self.items
        """)
        assert rules(diags) == set()

    def test_mutator_method_counts_as_write(self):
        diags = check("""
            import threading

            class Sink:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.rows = []
                def push(self, row):
                    with self._lock:
                        self.rows.append(row)
                def push_unsafe(self, row):
                    self.rows.append(row)
        """)
        assert "flow.lock.unguarded-write" in rules(diags)

    def test_lock_free_class_clean(self):
        diags = check("""
            class Plain:
                def __init__(self):
                    self.x = 0
                def bump(self):
                    self.x += 1
        """)
        assert rules(diags) == set()


class TestGuardedByAnnotation:
    def test_declared_guard_fires_on_unlocked_read(self):
        # The attribute is only ever written in __init__, so inference
        # alone would never guard it — the annotation does.
        diags = check("""
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = {}  # repro: guarded-by[_lock]
                def peek(self):
                    return self.state
        """)
        assert "flow.lock.unguarded-read" in rules(diags)

    def test_declared_guard_locked_access_clean(self):
        diags = check("""
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = {}  # repro: guarded-by[_lock]
                def peek(self):
                    with self._lock:
                        return self.state
        """)
        assert rules(diags) == set()

    def test_suppression_silences_finding(self):
        diags = check("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0
                def add(self, n):
                    with self._lock:
                        self.total = self.total + n
                def add_fast(self, n):
                    self.total = self.total + n  # repro: ignore[flow.lock]
        """)
        assert "flow.lock.unguarded-write" not in rules(diags)


class TestLockOrder:
    def test_opposite_orders_fire(self):
        diags = check("""
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def ab():
                with A:
                    with B:
                        pass

            def ba():
                with B:
                    with A:
                        pass
        """)
        assert "flow.lock.order" in rules(diags)

    def test_consistent_order_clean(self):
        diags = check("""
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def one():
                with A:
                    with B:
                        pass

            def two():
                with A:
                    with B:
                        pass
        """)
        assert "flow.lock.order" not in rules(diags)

    def test_cycle_via_intermediate_lock_fires(self):
        # A->B, B->C, C->A: no direct back-edge, still a deadlock cycle.
        diags = check("""
            import threading

            A = threading.Lock()
            B = threading.Lock()
            C = threading.Lock()

            def f():
                with A:
                    with B:
                        pass

            def g():
                with B:
                    with C:
                        pass

            def h():
                with C:
                    with A:
                        pass
        """)
        assert "flow.lock.order" in rules(diags)

    def test_self_lock_order_across_methods(self):
        diags = check("""
            import threading

            class Twin:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def fwd(self):
                    with self._a:
                        with self._b:
                            pass
                def rev(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        assert "flow.lock.order" in rules(diags)


class TestBlocking:
    def test_sleep_under_lock_fires(self):
        diags = check("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()
                def wait(self):
                    with self._lock:
                        time.sleep(1.0)
        """)
        assert "flow.lock.blocking" in rules(diags)

    def test_thread_join_under_lock_fires(self):
        diags = check("""
            import threading

            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._thread = threading.Thread(target=print)
                def stop(self):
                    with self._lock:
                        self._thread.join()
        """)
        assert "flow.lock.blocking" in rules(diags)

    def test_file_write_under_lock_fires(self):
        diags = check("""
            import threading

            class Writer:
                def __init__(self, fh):
                    self._lock = threading.Lock()
                    self._fh = fh
                def emit(self, line):
                    with self._lock:
                        self._fh.write(line)
        """)
        assert "flow.lock.blocking" in rules(diags)

    def test_string_join_under_lock_clean(self):
        # ', '.join is not a thread join; the receiver-name gate must
        # keep it quiet.
        diags = check("""
            import threading

            class Fmt:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.parts = []
                def render(self, sep):
                    with self._lock:
                        return sep.join(self.parts)
        """)
        assert "flow.lock.blocking" not in rules(diags)

    def test_sleep_outside_lock_clean(self):
        diags = check("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()
                def wait(self):
                    time.sleep(1.0)
        """)
        assert "flow.lock.blocking" not in rules(diags)


class TestWorkerCapture:
    def test_closure_over_lock_fires(self):
        diags = check("""
            import threading

            def run(pool, designs):
                lk = threading.Lock()
                def worker(u):
                    with lk:
                        return u + 1
                return pool.map(worker, designs)
        """)
        assert "flow.lock.worker-capture" in rules(diags)

    def test_lock_passed_into_submission_fires(self):
        diags = check("""
            import threading

            def run(pool, worker, designs):
                lk = threading.Lock()
                return pool.apply_async(worker, (designs, lk))
        """)
        assert "flow.lock.worker-capture" in rules(diags)

    def test_parent_side_lock_clean(self):
        diags = check("""
            import threading

            def run(pool, worker, designs):
                lk = threading.Lock()
                results = pool.map(worker, designs)
                with lk:
                    return list(results)
        """)
        assert "flow.lock.worker-capture" not in rules(diags)


class TestEntryPoints:
    def test_syntax_error_is_a_diagnostic(self):
        diags = check_source("def broken(:\n", path="x.py")
        assert rules(diags) == {"code.syntax"}

    def test_fixture_is_caught_statically(self):
        # The seeded cross-prong fixture: the same file the dynamic
        # sanitizer races in test_dynrace must be flagged from source.
        diags = check_paths([FIXTURES / "racy_counter.py"])
        assert "flow.lock.unguarded-write" in rules(diags)
        assert any("add_fast" in d.message for d in diags)

    def test_repo_obs_tree_clean(self):
        # The telemetry layer is the pass's motivating target; it must
        # hold the lock discipline the analyzer checks.
        import repro

        root = pathlib.Path(repro.__file__).parent
        assert check_paths([root / "obs"]) == []
