"""Tests for the protocol/state-machine conformance pass (proto.*)."""

import pathlib
import textwrap

from repro.analysis.diagnostics import Severity
from repro.analysis.protoconform import (
    check_paths,
    check_source,
    doc_tables,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]

#: Declarations shared by the state-machine fixtures.
DECLS = """
JOB_STATES = ("queued", "running", "finished", "failed")
TERMINAL_JOB_STATES = ("finished", "failed")
JOB_TRANSITIONS = (
    ("queued", "running"),
    ("running", "finished"),
    ("running", "failed"),
)
"""


def check(snippet, doc=None):
    return check_source(DECLS + textwrap.dedent(snippet),
                        path="serve/jobs.py", doc_text=doc)


def rules(diags):
    return {d.rule for d in diags}


def render(diags):
    return "\n".join(d.render() for d in diags)


class TestStateMachine:
    def test_unknown_state_literal_fires(self):
        diags = check("""
            def mark(job):
                job.state = "qeued"
        """)
        assert rules(diags) == {"proto.state.unknown"}

    def test_unknown_state_in_comparison_fires(self):
        diags = check("""
            def is_done(job):
                return job.state in ("finished", "complete")
        """)
        assert rules(diags) == {"proto.state.unknown"}

    def test_terminal_resurrection_fires(self):
        diags = check("""
            def retry(job):
                if job.state == "finished":
                    job.state = "queued"
        """)
        assert rules(diags) == {"proto.state.terminal"}

    def test_undeclared_transition_fires(self):
        diags = check("""
            def pause(job):
                if job.state == "queued":
                    job.state = "failed"
        """)
        assert rules(diags) == {"proto.state.transition"}

    def test_declared_transition_is_clean(self):
        diags = check("""
            def start(job):
                if job.state == "queued":
                    job.state = "running"
        """)
        assert diags == [], render(diags)

    def test_unguarded_assignment_is_not_judged(self):
        # Without a proven prior state the edge is unknown; the pass
        # favours zero false positives.
        diags = check("""
            def force(job):
                job.state = "queued"
        """)
        assert diags == [], render(diags)

    def test_else_branch_drops_the_guard(self):
        diags = check("""
            def flip(job):
                if job.state == "finished":
                    pass
                else:
                    job.state = "failed"
        """)
        assert diags == [], render(diags)

    def test_subscript_state_key_is_tracked(self):
        diags = check("""
            def resurrect(record):
                if record["state"] == "failed":
                    record["state"] = "queued"
        """)
        assert rules(diags) == {"proto.state.terminal"}

    def test_class_default_must_be_declared(self):
        diags = check("""
            class Job:
                state: str = "pending"
        """)
        assert rules(diags) == {"proto.state.unknown"}

    def test_no_declarations_means_no_state_findings(self):
        diags = check_source(textwrap.dedent("""
            def mark(machine):
                machine.state = "on"
        """), path="unrelated.py")
        assert diags == [], render(diags)


OP_IMPL = """
OPS = ("ping", "submit")
ERROR_CODES = ("bad-request",)

def _dispatch(self, op, params):
    if op == "ping":
        return {}
    if op == "submit":
        return {}
    raise ValueError(op)

class Client:
    def ping(self):
        return self.request("ping")
    def submit(self, spec):
        return self.request("submit", spec=spec)

def reject(req_id):
    return error_reply(req_id, "bad-request", "nope")
"""


class TestOpConformance:
    def test_matched_implementation_is_clean(self):
        diags = check_source(OP_IMPL, path="serve/server.py")
        assert diags == [], render(diags)

    def test_client_only_op_fires(self):
        src = OP_IMPL + textwrap.dedent("""
            class Wide(Client):
                def legacy(self):
                    return self.request("legacy")
        """)
        diags = check_source(src, path="serve/server.py")
        assert "proto.op.client-only" in rules(diags)
        assert "proto.op.undeclared" in rules(diags)

    def test_server_only_op_fires(self):
        src = OP_IMPL.replace(
            '    raise ValueError(op)',
            '    if op == "rogue":\n        return {}\n'
            '    raise ValueError(op)')
        diags = check_source(src, path="serve/server.py")
        assert "proto.op.server-only" in rules(diags)

    def test_declared_but_unhandled_op_fires(self):
        src = OP_IMPL.replace('OPS = ("ping", "submit")',
                              'OPS = ("ping", "submit", "tail")')
        diags = check_source(src, path="serve/server.py")
        assert "proto.op.unhandled" in rules(diags)

    def test_conditional_error_code_is_resolved(self):
        # The straight-line local must be traced to both literal arms.
        src = OP_IMPL + textwrap.dedent("""
            def classify(req_id, exc):
                code = ("bad-request" if exc else "mystery")
                return error_reply(req_id, code, str(exc))
        """)
        diags = check_source(src, path="serve/server.py")
        assert {d.message for d in diags
                if d.rule == "proto.error.mismatch"
                and "mystery" in d.message}

    def test_unconstructed_declared_code_is_a_warning(self):
        src = OP_IMPL.replace("ERROR_CODES = (\"bad-request\",)",
                              "ERROR_CODES = (\"bad-request\", \"spare\")")
        diags = check_source(src, path="serve/server.py")
        spare = [d for d in diags if "spare" in d.message]
        assert spare and all(d.severity is Severity.WARNING
                             for d in spare)

    def test_suppression_comment_works(self):
        src = OP_IMPL + textwrap.dedent("""
            class Wide(Client):
                def legacy(self):
                    return self.request("legacy")  # repro: ignore[proto]
        """)
        diags = check_source(src, path="serve/server.py")
        assert not [d for d in diags if "legacy" in d.message], \
            render(diags)


DOC = """
| op | params |
|---|---|
| `ping` | - |
| `submit` | `spec` |

| code | meaning |
|---|---|
| `bad-request` | malformed |
"""


class TestDocConformance:
    def test_doc_tables_parse(self):
        ops, codes = doc_tables(DOC)
        assert set(ops) == {"ping", "submit"}
        assert set(codes) == {"bad-request"}

    def test_matching_doc_is_clean(self):
        diags = check_source(OP_IMPL, path="serve/server.py", doc_text=DOC)
        assert diags == [], render(diags)

    def test_undocumented_op_fires(self):
        short_doc = DOC.replace("| `submit` | `spec` |\n", "")
        diags = check_source(OP_IMPL, path="serve/server.py",
                             doc_text=short_doc)
        assert "proto.op.undocumented" in rules(diags)

    def test_stale_doc_row_fires(self):
        stale = DOC.replace("| `submit` | `spec` |",
                            "| `submit` | `spec` |\n| `ghost` | - |")
        diags = check_source(OP_IMPL, path="serve/server.py",
                             doc_text=stale)
        assert any("ghost" in d.message for d in diags
                   if d.rule == "proto.op.undocumented")

    def test_undocumented_error_code_fires(self):
        # A second declared+constructed code that the doc table lacks.
        src = OP_IMPL.replace(
            'ERROR_CODES = ("bad-request",)',
            'ERROR_CODES = ("bad-request", "internal")').replace(
            'return error_reply(req_id, "bad-request", "nope")',
            'return error_reply(req_id, "bad-request", "nope") or '
            'error_reply(req_id, "internal", "boom")')
        diags = check_source(src, path="serve/server.py", doc_text=DOC)
        assert any("internal" in d.message for d in diags
                   if d.rule == "proto.error.mismatch")


class TestRepoIsClean:
    def test_repo_conforms_to_its_own_contract(self):
        diags = check_paths([REPO / "src/repro"],
                            doc=REPO / "docs/service.md")
        assert diags == [], render(diags)

    def test_seeded_fixture_fires(self):
        diags = check_paths([FIXTURES / "service_violations.py"],
                            doc=REPO / "docs/service.md")
        assert "proto.state.terminal" in rules(diags)
