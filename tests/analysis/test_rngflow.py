"""Tests for the flow-sensitive RNG provenance pass (flow.rng.*)."""

import textwrap

from repro.analysis.rngflow import check_source
from repro.analysis.diagnostics import Severity


def check(snippet, path="m.py"):
    return check_source(textwrap.dedent(snippet), path=path)


def rules(diags):
    return {d.rule for d in diags}


class TestNoParam:
    def test_module_global_generator_fires(self):
        diags = check("""
            import numpy as np
            rng = np.random.default_rng(0)
            def sample(n):
                return rng.uniform(size=n)
        """)
        assert "flow.rng.no-param" in rules(diags)
        assert any(d.severity == Severity.ERROR for d in diags)

    def test_uppercase_module_constant_fires(self):
        diags = check("""
            import numpy as np
            _GLOBAL_RNG = np.random.default_rng(0)
            def sample(n):
                return _GLOBAL_RNG.uniform(size=n)
        """)
        assert "flow.rng.no-param" in rules(diags)

    def test_threaded_parameter_clean(self):
        assert check("""
            def sample(rng, n):
                return rng.uniform(size=n)
        """) == []

    def test_annotated_parameter_clean(self):
        assert check("""
            import numpy as np
            def sample(gen_rng: np.random.Generator, n):
                return gen_rng.uniform(size=n)
        """) == []

    def test_self_state_clean(self):
        assert check("""
            class Layer:
                def forward(self, x):
                    return self.rng.normal(size=x.shape)
        """) == []

    def test_local_construction_clean(self):
        assert check("""
            import numpy as np
            def sample(seed, n):
                rng = np.random.default_rng(seed)
                return rng.uniform(size=n)
        """) == []

    def test_non_rng_name_not_flagged(self):
        # `frame.permutation(...)` is not provably a Generator; the pass
        # stays silent rather than guessing.
        assert check("""
            frame = object()
            def f():
                return frame.permutation()
        """) == []


class TestUnseeded:
    def test_unseeded_in_function_warns(self):
        diags = check("""
            import numpy as np
            def setup():
                rng = np.random.default_rng()
                return rng
        """)
        assert rules(diags) == {"flow.rng.unseeded"}
        assert diags[0].severity == Severity.WARNING

    def test_seeded_clean(self):
        assert check("""
            import numpy as np
            def setup(seed):
                return np.random.default_rng(seed)
        """) == []

    def test_main_entry_point_allowed(self):
        assert check("""
            import numpy as np
            def main():
                rng = np.random.default_rng()
                return rng
        """) == []

    def test_cli_command_allowed(self):
        assert check("""
            import numpy as np
            def cmd_demo(args):
                return np.random.default_rng()
        """) == []

    def test_examples_module_scope_allowed(self):
        assert check(
            "import numpy as np\nrng = np.random.default_rng()\n",
            path="examples/quickstart.py") == []

    def test_suppression_comment(self):
        assert check("""
            import numpy as np
            def setup():
                return np.random.default_rng()  # repro: ignore[flow.rng.unseeded]
        """) == []


class TestSharedClosure:
    def test_rng_captured_into_pool_closure_fires(self):
        diags = check("""
            def run(rng, pool, designs):
                def worker(u):
                    return rng.normal() + u
                return pool.map(worker, designs)
        """)
        assert "flow.rng.shared-closure" in rules(diags)

    def test_spawned_generators_clean(self):
        assert check("""
            def run(rng, pool, designs):
                streams = rng.spawn(len(designs))
                def worker(pair):
                    child_rng, u = pair
                    return child_rng.normal() + u
                return pool.map(worker, list(zip(streams, designs)))
        """) == []

    def test_not_submitted_closure_is_no_param_free(self):
        # A closure over a parameter rng that is never submitted to a
        # pool is ordinary (and correct) generator threading.
        assert check("""
            def run(rng):
                def helper():
                    return rng.uniform()
                return helper()
        """) == []


class TestRepoSources:
    def test_core_tree_matches_baseline(self):
        # src/repro is finding-free: the two historical unseeded-fallback
        # warnings (nn/layers.py, spice/montecarlo.py) were fixed by
        # threading an explicit seed parameter, and lint-baseline.json
        # froze back down to zero.
        import pathlib

        import repro
        from repro.analysis.rngflow import check_paths

        root = pathlib.Path(repro.__file__).parent
        assert check_paths([root]) == []

    def test_syntax_error_is_a_diagnostic(self):
        diags = check_source("def broken(:\n", path="x.py")
        assert rules(diags) == {"code.syntax"}
