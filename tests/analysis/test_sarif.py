"""Tests for the SARIF 2.1.0 renderer."""

import json

from repro.analysis.diagnostics import Diagnostic, RuleSet, Severity
from repro.analysis.sarif import render_sarif, to_sarif

RULES = RuleSet()
RULES.add("flow.rng.no-param", Severity.ERROR, "no rng parameter")
RULES.add("flow.rng.unseeded", Severity.WARNING, "unseeded default_rng")

ERR = Diagnostic(rule="flow.rng.no-param", severity=Severity.ERROR,
                 message="boom", location="src/repro/core/x.py:42",
                 fix="thread rng")
WARN = Diagnostic(rule="flow.rng.unseeded", severity=Severity.WARNING,
                  message="meh", location="field n_elite")


class TestDocumentShape:
    def test_version_and_schema(self):
        doc = to_sarif([ERR], rule_sets=[RULES])
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_driver_rules_catalog(self):
        doc = to_sarif([], rule_sets=[RULES])
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["flow.rng.no-param",
                                           "flow.rng.unseeded"]
        assert rules[0]["defaultConfiguration"]["level"] == "error"
        assert rules[1]["defaultConfiguration"]["level"] == "warning"


class TestResults:
    def test_severity_level_mapping(self):
        info = Diagnostic(rule="x.i", severity=Severity.INFO, message="m")
        doc = to_sarif([ERR, WARN, info])
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_physical_location_parsed(self):
        doc = to_sarif([ERR])
        loc = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"
        assert loc["region"]["startLine"] == 42

    def test_fix_folded_into_message(self):
        doc = to_sarif([ERR])
        assert "(fix: thread rng)" in \
            doc["runs"][0]["results"][0]["message"]["text"]

    def test_non_file_location_kept_in_message(self):
        doc = to_sarif([WARN])
        result = doc["runs"][0]["results"][0]
        assert "locations" not in result
        assert "[at field n_elite]" in result["message"]["text"]

    def test_render_is_valid_json(self):
        parsed = json.loads(render_sarif([ERR, WARN], rule_sets=[RULES]))
        assert parsed["runs"][0]["results"]
