"""Tests for the symbolic shape-contract checker (shape.*)."""

import textwrap

from repro.analysis.shapes import (
    Sym,
    check_config_sources,
    check_construction_source,
    check_networks_source,
    check_shapes,
    sym_eval,
)


def rules(diags):
    return {d.rule for d in diags}


def networks(snippet):
    return check_networks_source(textwrap.dedent(snippet), path="n.py")


def construction(snippet):
    return check_construction_source(textwrap.dedent(snippet), path="c.py")


GOOD_NETWORKS = """
    class Critic:
        def __init__(self, d, n_metrics, hidden=(100, 100), seed=None):
            self.net = MLP([2 * d, *hidden, n_metrics], seed=seed)

    class Actor:
        def __init__(self, d, hidden=(100, 100), seed=None):
            self.net = MLP([d, *hidden, d], output_activation="tanh")
"""


class TestSym:
    def test_linear_arithmetic(self):
        import ast

        env = {}
        e = sym_eval(ast.parse("2 * d + 1", mode="eval").body, env)
        assert e == Sym.of(1.0, d=2.0)

    def test_env_substitution(self):
        import ast

        env = {"n": Sym.of(1.0, **{"task.m": 1.0})}
        e = sym_eval(ast.parse("n", mode="eval").body, env)
        assert e.anchored_on(".m") and e.const == 1.0

    def test_nonlinear_gives_none(self):
        import ast

        assert sym_eval(ast.parse("d * d", mode="eval").body, {}) is None

    def test_str_rendering(self):
        assert str(Sym.of(1.0, **{"task.m": 1.0})) == "task.m + 1"


class TestCriticActorIO:
    def test_paper_contracts_clean(self):
        assert networks(GOOD_NETWORKS) == []

    def test_critic_input_not_doubled_fires(self):
        diags = networks(GOOD_NETWORKS.replace("[2 * d,", "[d,"))
        assert "shape.critic-io" in rules(diags)

    def test_critic_output_wrong_symbol_fires(self):
        diags = networks(GOOD_NETWORKS.replace(
            "*hidden, n_metrics]", "*hidden, d]"))
        assert "shape.critic-io" in rules(diags)

    def test_actor_not_square_fires(self):
        diags = networks(GOOD_NETWORKS.replace(
            "[d, *hidden, d]", "[d, *hidden, 2 * d]"))
        assert "shape.actor-io" in rules(diags)

    def test_folded_local_assignment_followed(self):
        # in_dim = 2 * d threaded through a local still satisfies Eq. 4.
        assert networks("""
            class Critic:
                def __init__(self, d, n_metrics):
                    in_dim = 2 * d
                    self.net = MLP([in_dim, 100, n_metrics])

            class Actor:
                def __init__(self, d):
                    self.net = MLP([d, 100, d])
        """) == []

    def test_missing_class_warns(self):
        diags = networks("class Unrelated:\n    pass\n")
        assert rules(diags) == {"shape.contract-missing"}


class TestMlpSizes:
    def test_single_entry_list_fires(self):
        diags = networks(GOOD_NETWORKS.replace(
            "[d, *hidden, d]", "[d]"))
        assert "shape.mlp-sizes" in rules(diags)

    def test_nonpositive_width_fires(self):
        diags = networks(GOOD_NETWORKS.replace(
            "[2 * d, *hidden, n_metrics]", "[2 * d, 0, n_metrics]"))
        assert "shape.mlp-sizes" in rules(diags)


class TestCriticMetrics:
    def test_seeded_mutation_width_m_fires(self):
        # The ISSUE's seeded mutation: critic output width m, not m + 1.
        diags = construction("""
            def build(task, cfg):
                critic = Critic(task.d, task.m, seed=1)
                return critic
        """)
        assert rules(diags) == {"shape.critic-metrics"}

    def test_width_through_local_binding_fires(self):
        diags = construction("""
            def build(task, cfg):
                n_metrics = task.m
                return Critic(task.d, n_metrics, seed=1)
        """)
        assert rules(diags) == {"shape.critic-metrics"}

    def test_correct_m_plus_one_clean(self):
        assert construction("""
            def build(task, cfg):
                n_metrics = task.m + 1
                ens = CriticEnsemble(task.d, n_metrics, n_critics=3)
                return ens
        """) == []

    def test_bare_passthrough_not_flagged(self):
        # CriticEnsemble internally does Critic(d, n_metrics, ...) with a
        # formal parameter — provenance unknown, must stay silent.
        assert construction("""
            def make(d, n_metrics):
                return Critic(d, n_metrics)
        """) == []

    def test_actor_wrong_dimension_fires(self):
        diags = construction("""
            def build(task):
                return Actor(2 * task.d, seed=0)
        """)
        assert "shape.actor-io" in rules(diags)


class TestConfigContracts:
    GOOD_CFG = """
        class MAOptConfig:
            n_elite: int = 16
            ns_samples: int = 2000
            ns_radius: float = 0.04
            ns_phase: int = 0
            t_ns: int = 5
    """
    GOOD_EXP = """
        TUNED_MAOPT = {"n_elite": 24}
        class BenchConfig:
            n_init: int = 50
    """

    def check(self, cfg=None, exp=None):
        return check_config_sources(
            textwrap.dedent(cfg or self.GOOD_CFG),
            textwrap.dedent(exp or self.GOOD_EXP))

    def test_defaults_clean(self):
        assert self.check() == []

    def test_default_elite_exceeding_population_fires(self):
        diags = self.check(cfg=self.GOOD_CFG.replace("16", "80"))
        assert "shape.elite-bound" in rules(diags)

    def test_tuned_elite_exceeding_population_fires(self):
        diags = self.check(exp=self.GOOD_EXP.replace("24", "64"))
        assert "shape.elite-bound" in rules(diags)

    def test_empty_ns_box_fires(self):
        diags = self.check(cfg=self.GOOD_CFG.replace("2000", "0"))
        assert "shape.ns-box" in rules(diags)

    def test_oversized_radius_fires(self):
        diags = self.check(cfg=self.GOOD_CFG.replace("0.04", "0.8"))
        assert "shape.ns-box" in rules(diags)

    def test_phase_beyond_period_fires(self):
        diags = self.check(
            cfg=self.GOOD_CFG.replace("ns_phase: int = 0",
                                      "ns_phase: int = 7"))
        assert "shape.ns-box" in rules(diags)


class TestRepoContracts:
    def test_installed_package_is_clean(self):
        assert check_shapes() == []

    def test_missing_tree_degrades_loudly(self, tmp_path):
        diags = check_shapes(tmp_path)
        assert rules(diags) == {"shape.contract-missing"}
