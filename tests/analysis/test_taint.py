"""Tests for the service-boundary taint pass (flow.taint.*)."""

import pathlib
import textwrap

from repro.analysis.flow import build_module
from repro.analysis.taint import (
    check_modules,
    check_paths,
    check_source,
    is_source_module,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]

#: Paths under serve/ make spec-shaped parameters untrusted sources.
SPEC_MODULE = "serve/jobs.py"


def check(snippet, path=SPEC_MODULE):
    return check_source(textwrap.dedent(snippet), path=path)


def rules(diags):
    return {d.rule for d in diags}


def render(diags):
    return "\n".join(d.render() for d in diags)


class TestPathSink:
    def test_spec_field_joined_into_path_fires(self):
        diags = check("""
            def handle(spec, base_dir):
                return base_dir / spec["tenant"]
        """)
        assert rules(diags) == {"flow.taint.path"}

    def test_spec_field_in_path_ctor_fires(self):
        diags = check("""
            import pathlib

            def handle(spec):
                return pathlib.Path(spec["tenant"]) / "ckpt.npz"
        """)
        assert "flow.taint.path" in rules(diags)

    def test_decoded_value_into_os_calls_fires(self):
        diags = check("""
            import os
            from repro.serve import protocol

            def handle(line):
                doc = protocol.decode(line)
                os.makedirs(doc["run_dir"])
        """, path="m.py")
        assert rules(diags) == {"flow.taint.path"}

    def test_validate_job_sanitizes(self):
        diags = check("""
            def handle(spec, base_dir):
                validate_job(spec)
                return base_dir / spec["tenant"]
        """)
        assert diags == [], render(diags)

    def test_canonicalizer_return_is_clean(self):
        diags = check("""
            def handle(spec, base_dir):
                spec = canonical_spec(spec)
                return base_dir / spec["tenant"]
        """)
        assert diags == [], render(diags)

    def test_sanitized_comment_vouches_for_the_line(self):
        diags = check("""
            def handle(spec, base_dir):
                return base_dir / spec["tenant"]  # repro: sanitized[flow.taint.path]
        """)
        assert diags == [], render(diags)

    def test_trusted_module_spec_param_is_clean(self):
        # Outside the serve trust boundary a 'spec' parameter is just a
        # parameter.
        diags = check("""
            def handle(spec, base_dir):
                return base_dir / spec["tenant"]
        """, path="repro/core/runner.py")
        assert diags == [], render(diags)

    def test_taint_module_marker_opts_in(self):
        diags = check("""
            # repro: taint-module
            def handle(spec, base_dir):
                return base_dir / spec["tenant"]
        """, path="repro/core/runner.py")
        assert rules(diags) == {"flow.taint.path"}

    def test_numeric_division_is_not_a_path_join(self):
        diags = check("""
            def handle(spec):
                total = 10.0
                return total / spec["n_sims"]
        """)
        assert diags == [], render(diags)


class TestExecSink:
    def test_subprocess_fires(self):
        diags = check("""
            import subprocess

            def handle(spec):
                subprocess.run(spec["cmd"])
        """)
        assert rules(diags) == {"flow.taint.exec"}

    def test_bare_eval_fires(self):
        diags = check("""
            def handle(spec):
                return eval(spec["expr"])
        """)
        assert rules(diags) == {"flow.taint.exec"}

    def test_fixed_table_lookup_is_clean(self):
        diags = check("""
            TASKS = {"sphere": object}

            def handle(spec):
                return TASKS[spec["task"]]
        """)
        assert diags == [], render(diags)


class TestBudgetSink:
    def test_float_on_spec_field_fires(self):
        diags = check("""
            def handle(spec):
                return float(spec.get("n_sims", 0))
        """)
        assert rules(diags) == {"flow.taint.budget"}

    def test_int_after_validation_is_clean(self):
        diags = check("""
            def handle(spec):
                validate_job(spec)
                return int(spec["n_sims"])
        """)
        assert diags == [], render(diags)

    def test_trusted_record_coercion_is_clean(self):
        # Persisted job records are the repo's own output, not client
        # input — the from_record idiom must stay clean.
        diags = check("""
            def from_record(doc):
                return int(doc.get("attempt", 0))
        """)
        assert diags == [], render(diags)


class TestFormatSink:
    def test_fstring_into_raw_write_fires(self):
        diags = check("""
            def reply(fh, spec):
                fh.write(f"bad task {spec['task']}".encode())
        """)
        assert rules(diags) == {"flow.taint.format"}

    def test_protocol_encode_is_the_sanctioned_path(self):
        diags = check("""
            from repro.serve import protocol

            def reply(fh, spec):
                fh.write(protocol.encode({"task": spec["task"]}))
        """)
        assert diags == [], render(diags)


class TestFrameSizeSink:
    def test_unbounded_readline_on_stream_fires(self):
        diags = check("""
            def serve(conn):
                fh = conn.makefile("rwb")
                return fh.readline()
        """, path="m.py")
        assert rules(diags) == {"flow.taint.frame-size"}

    def test_capped_readline_is_clean(self):
        diags = check("""
            MAX = 1_000_000

            def serve(conn):
                fh = conn.makefile("rwb")
                return fh.readline(MAX + 1)
        """, path="m.py")
        assert diags == [], render(diags)

    def test_self_attribute_stream_across_methods(self):
        diags = check("""
            import socket

            class Client:
                def __init__(self, addr):
                    self._sock = socket.create_connection(addr, timeout=5)
                    self._fh = self._sock.makefile("rwb")

                def read(self):
                    return self._fh.read()

                def close(self):
                    self._sock.close()
        """, path="m.py")
        assert rules(diags) == {"flow.taint.frame-size"}

    def test_file_reads_are_not_streams(self):
        diags = check("""
            def slurp(path):
                with open(path) as fh:
                    return fh.read()
        """, path="m.py")
        assert diags == [], render(diags)


class TestCrossFile:
    def test_taint_crosses_the_call_graph(self):
        # The spec enters in the serve module; the sink lives in a
        # helper module — only whole-unit analysis can connect them.
        entry = build_module(textwrap.dedent("""
            from repro.serve.layout import run_dir_for

            def handle(spec):
                return run_dir_for(spec["tenant"])
        """), path=SPEC_MODULE)
        helper = build_module(textwrap.dedent("""
            import pathlib

            def run_dir_for(tenant):
                return pathlib.Path("runs") / tenant
        """), path="serve/layout.py")
        diags = check_modules([entry, helper])
        assert rules(diags) == {"flow.taint.path"}
        assert "layout.py" in diags[0].location

    def test_clean_caller_of_shared_helper_stays_clean(self):
        # Context sensitivity: the helper is only dangerous when its
        # argument is tainted; a trusted caller must not inherit the
        # finding twice.
        entry = build_module(textwrap.dedent("""
            from repro.serve.layout import run_dir_for

            def trusted(name):
                return run_dir_for(name)
        """), path="core/runner.py")
        helper = build_module(textwrap.dedent("""
            import pathlib

            def run_dir_for(tenant):
                return pathlib.Path("runs") / tenant
        """), path="serve/layout.py")
        diags = check_modules([entry, helper])
        assert diags == [], render(diags)


class TestSuppression:
    def test_ignore_comment_silences(self):
        diags = check("""
            def handle(spec, base_dir):
                return base_dir / spec["tenant"]  # repro: ignore[flow.taint]
        """)
        assert diags == [], render(diags)

    def test_syntax_error_is_a_diagnostic(self):
        diags = check_source("def broken(:\n", path="m.py")
        assert rules(diags) == {"code.syntax"}


class TestSourceModulePredicate:
    def test_serve_spec_modules_are_sources(self):
        mod = build_module("x = 1\n", path="src/repro/serve/jobs.py")
        assert is_source_module(mod)

    def test_other_modules_are_not(self):
        mod = build_module("x = 1\n", path="src/repro/core/ma_opt.py")
        assert not is_source_module(mod)


class TestRepoIsClean:
    def test_serve_package_is_taint_clean(self):
        diags = check_paths([REPO / "src/repro/serve"])
        assert diags == [], render(diags)

    def test_seeded_fixture_fires(self):
        diags = check_paths([FIXTURES / "service_violations.py"])
        assert "flow.taint.path" in rules(diags)
