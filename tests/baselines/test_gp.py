"""Unit tests for the from-scratch Gaussian process."""

import numpy as np
import pytest

from repro.baselines.gp import GaussianProcess


class TestFitPredict:
    def test_interpolates_training_points(self, rng):
        x = rng.uniform(size=(20, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        gp = GaussianProcess(2).fit(x, y, optimize=True)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.uniform(0.4, 0.6, size=(15, 1))
        y = x[:, 0]
        gp = GaussianProcess(1).fit(x, y, optimize=False)
        _, std_near = gp.predict(np.array([[0.5]]))
        _, std_far = gp.predict(np.array([[0.0]]))
        assert std_far[0] > 2 * std_near[0]

    def test_smooth_function_good_generalization(self, rng):
        x = rng.uniform(size=(60, 2))
        y = np.sum(x**2, axis=1)
        gp = GaussianProcess(2).fit(x, y, optimize=True)
        x_test = rng.uniform(0.1, 0.9, size=(20, 2))
        mean, _ = gp.predict(x_test)
        np.testing.assert_allclose(mean, np.sum(x_test**2, axis=1), atol=0.1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess(2).predict(np.zeros((1, 2)))

    def test_shape_validation(self, rng):
        gp = GaussianProcess(3)
        with pytest.raises(ValueError):
            gp.fit(rng.uniform(size=(5, 2)), rng.uniform(size=5))
        with pytest.raises(ValueError):
            gp.fit(rng.uniform(size=(5, 3)), rng.uniform(size=4))

    def test_bad_dim_raises(self):
        with pytest.raises(ValueError):
            GaussianProcess(0)

    def test_hyperparameter_optimization_improves_nll(self, rng):
        x = rng.uniform(size=(40, 1))
        y = np.sin(10 * x[:, 0])
        gp_plain = GaussianProcess(1, lengthscale=5.0).fit(x, y, optimize=False)
        gp_opt = GaussianProcess(1, lengthscale=5.0).fit(x, y, optimize=True)
        # optimized lengthscale should shrink to capture the oscillation
        assert np.exp(gp_opt.log_ls[0]) < np.exp(gp_plain.log_ls[0])

    def test_constant_targets_handled(self):
        x = np.linspace(0, 1, 10)[:, None]
        y = np.full(10, 3.0)
        gp = GaussianProcess(1).fit(x, y, optimize=False)
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)
