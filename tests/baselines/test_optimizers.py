"""Behavioural tests for the baseline optimizers."""

import numpy as np
import pytest

from repro.baselines import (
    BayesOpt,
    DifferentialEvolution,
    ParticleSwarm,
    RandomSearch,
)
from repro.core.fom import FigureOfMerit
from repro.core.synthetic import ConstrainedSphere


@pytest.fixture
def task():
    return ConstrainedSphere(d=5, seed=2)


ALL = [RandomSearch, BayesOpt, ParticleSwarm, DifferentialEvolution]


class TestProtocol:
    @pytest.mark.parametrize("cls", ALL)
    def test_budget_respected(self, cls, task):
        res = cls(task, seed=0).run(n_sims=15, n_init=10)
        assert res.n_sims == 15

    @pytest.mark.parametrize("cls", ALL)
    def test_shared_init_set_used(self, cls, task, rng):
        x = task.space.sample(rng, 8)
        f = task.evaluate_batch(x)
        fom = FigureOfMerit(task)
        res = cls(task, seed=0).run(n_sims=5, x_init=x, f_init=f)
        assert res.init_best_fom == pytest.approx(float(np.min(fom(f))))

    @pytest.mark.parametrize("cls", ALL)
    def test_designs_stay_in_cube(self, cls, task):
        res = cls(task, seed=0).run(n_sims=25, n_init=10)
        for r in res.records:
            assert np.all(r.x >= 0.0) and np.all(r.x <= 1.0)

    @pytest.mark.parametrize("cls", ALL)
    def test_deterministic_given_seed(self, cls, task, rng):
        x = task.space.sample(rng, 8)
        f = task.evaluate_batch(x)
        a = cls(task, seed=5).run(n_sims=10, x_init=x, f_init=f)
        b = cls(task, seed=5).run(n_sims=10, x_init=x, f_init=f)
        np.testing.assert_allclose(a.foms, b.foms)

    @pytest.mark.parametrize("cls", ALL)
    def test_method_name_recorded(self, cls, task):
        res = cls(task, seed=0).run(n_sims=3, n_init=5)
        assert res.method == cls.method_name


class TestOptimizationQuality:
    def test_bo_beats_random_on_smooth_task(self, task, rng):
        x = task.space.sample(rng, 15)
        f = task.evaluate_batch(x)
        bo = BayesOpt(task, seed=1).run(n_sims=30, x_init=x, f_init=f)
        rnd = RandomSearch(task, seed=1).run(n_sims=30, x_init=x, f_init=f)
        assert bo.best_fom < rnd.best_fom

    def test_pso_improves(self, task):
        res = ParticleSwarm(task, seed=3, n_particles=8).run(
            n_sims=60, n_init=20)
        assert res.best_fom < res.init_best_fom

    def test_de_improves(self, task):
        res = DifferentialEvolution(task, seed=3, pop_size=8).run(
            n_sims=60, n_init=20)
        assert res.best_fom < res.init_best_fom


class TestValidation:
    def test_pso_needs_particles(self, task):
        with pytest.raises(ValueError):
            ParticleSwarm(task, n_particles=1)

    def test_de_needs_population(self, task):
        with pytest.raises(ValueError):
            DifferentialEvolution(task, pop_size=2)

    def test_de_crossover_range(self, task):
        with pytest.raises(ValueError):
            DifferentialEvolution(task, crossover=0.0)

    def test_bo_candidate_pool(self, task):
        with pytest.raises(ValueError):
            BayesOpt(task, n_candidates=1)


class TestDEMechanics:
    def test_population_only_improves(self, task):
        de = DifferentialEvolution(task, seed=0, pop_size=6)
        de.run(n_sims=40, n_init=12)
        # every slot's fom must be <= the initial best-12 slot values
        assert np.all(np.isfinite(de.pop_y))

    def test_trial_at_least_one_mutant_gene(self, task, rng):
        de = DifferentialEvolution(task, seed=0, pop_size=6, crossover=0.01)
        de.run(n_sims=6, n_init=12)
        # with tiny crossover the trial still differs from the parent
        # (guaranteed mutant gene) -- exercised implicitly; just sanity:
        assert de.pop.shape == (6, task.d)
