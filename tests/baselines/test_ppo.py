"""Tests for the AutoCkt-style PPO baseline."""

import numpy as np
import pytest

from repro.baselines.ppo import N_CHOICES, PPOSizer, _softmax
from repro.core.synthetic import ConstrainedSphere, QuadraticAmplifierToy


@pytest.fixture
def task():
    return ConstrainedSphere(d=5, seed=2)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(4, 3)) * 10
        p = _softmax(logits)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-12)

    def test_stable_for_large_logits(self):
        p = _softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)


class TestProtocol:
    def test_budget_respected(self, task):
        res = PPOSizer(task, seed=0, horizon=5).run(n_sims=17, n_init=8)
        assert res.n_sims == 17

    def test_steps_bounded_by_step_frac(self, task):
        agent = PPOSizer(task, seed=0, horizon=50, step_frac=0.05)
        res = agent.run(n_sims=20, n_init=5)
        xs = [r.x for r in res.records]
        # consecutive steps within one episode move at most step_frac per dim
        for a, b in zip(xs, xs[1:]):
            if np.max(np.abs(b - a)) > 0.05 + 1e-9:
                break  # episode boundary (random restart) - allowed
        assert np.all(xs[1] >= 0.0) and np.all(xs[1] <= 1.0)

    def test_deterministic_given_seed(self, task, rng):
        x = task.space.sample(rng, 6)
        f = task.evaluate_batch(x)
        a = PPOSizer(task, seed=4).run(n_sims=12, x_init=x, f_init=f)
        b = PPOSizer(task, seed=4).run(n_sims=12, x_init=x, f_init=f)
        np.testing.assert_allclose(a.foms, b.foms)

    def test_bad_hyperparameters_raise(self, task):
        with pytest.raises(ValueError):
            PPOSizer(task, horizon=0)
        with pytest.raises(ValueError):
            PPOSizer(task, step_frac=1.5)
        with pytest.raises(ValueError):
            PPOSizer(task, clip=0.0)


class TestLearning:
    def test_update_changes_policy(self, task):
        agent = PPOSizer(task, seed=1, horizon=4, epochs=4)
        obs_probe = np.zeros(task.d + task.m + 1)
        before = agent._policy_logits(obs_probe).copy()
        agent.run(n_sims=20, n_init=5)
        after = agent._policy_logits(obs_probe)
        assert not np.allclose(before, after)

    def test_improves_on_toy_with_generous_budget(self):
        """On the cheap 2-D toy, PPO with a few hundred steps should beat
        pure random exploration."""
        task = QuadraticAmplifierToy()
        ppo = PPOSizer(task, seed=3, horizon=10, step_frac=0.1)
        res = ppo.run(n_sims=250, n_init=10)
        from repro.baselines import RandomSearch

        rnd = RandomSearch(task, seed=3).run(n_sims=250, n_init=10)
        assert res.best_fom <= rnd.best_fom * 2.0  # at least competitive

    def test_sample_inefficiency_vs_maopt(self, task, rng):
        """The paper's premise: at a 60-sim budget the RL-inspired MA-Opt
        beats true-RL PPO."""
        from repro.core.config import MAOptConfig
        from repro.core.ma_opt import MAOptimizer

        x = task.space.sample(rng, 20)
        f = task.evaluate_batch(x)
        ppo = PPOSizer(task, seed=5).run(n_sims=60, x_init=x, f_init=f)
        cfg = MAOptConfig.from_preset(
            "ma-opt", seed=5, critic_steps=25, actor_steps=12,
            batch_size=32, n_elite=8)
        ma = MAOptimizer(task, cfg).run(n_sims=60, x_init=x, f_init=f)
        assert ma.best_fom < ppo.best_fom


class TestRunnerIntegration:
    def test_ppo_available_in_registry(self, task, rng):
        from repro.experiments import make_initial_set, run_method

        x, f = make_initial_set(task, 6, seed=0)
        res = run_method("PPO", task, 5, x, f, seed=1)
        assert res.method == "PPO"
        assert res.n_sims == 5
