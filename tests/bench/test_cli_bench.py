"""Tests for ``ma-opt bench run|compare|list`` (flow and exit codes)."""

import json

import pytest

from repro.bench import load_result, load_trajectory, save_result
from repro.bench.schema import build_result, stat_summary
from repro.cli import main

FAST = ["--repeats", "1", "--warmup", "0", "--filter", "micro.pseudo.batch"]


def _doc(wall):
    entry = {"name": "micro.pseudo.batch", "tier": "micro",
             "description": "", "repeats": 1, "warmup": 0,
             "wall_s": stat_summary([wall]), "cpu_s": stat_summary([wall]),
             "peak_mem_kb": 1.0, "extra": {}}
    return build_result([entry], seed=0, created_unix=0.0)


class TestBenchList:
    def test_text(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "micro.mna.solve" in out
        assert "macro.run.sphere" in out

    def test_json_filtered(self, capsys):
        assert main(["bench", "list", "--filter", "micro.pseudo",
                     "--format", "json"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert {r["name"] for r in rows} == \
            {"micro.pseudo.batch", "micro.pseudo.all"}
        assert all(r["tier"] == "micro" for r in rows)


class TestBenchRun:
    def test_writes_result_and_trajectory(self, tmp_path, capsys):
        out = tmp_path / "perf" / "latest.json"
        traj = tmp_path / "BENCH_core.json"
        rc = main(["bench", "run", *FAST, "--out", str(out),
                   "--trajectory", str(traj)])
        assert rc == 0
        doc = load_result(out)  # raises if schema-invalid
        assert [e["name"] for e in doc["benchmarks"]] == \
            ["micro.pseudo.batch"]
        entries = load_trajectory(traj)["entries"]
        assert len(entries) == 1
        assert "micro.pseudo.batch" in entries[0]["wall_min_s"]
        assert "wall min" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        rc = main(["bench", "run", *FAST, "--out", "",
                   "--no-trajectory", "--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.bench/result"

    def test_unknown_filter_exits_2(self, tmp_path, capsys):
        rc = main(["bench", "run", "--filter", "nope", "--out", "",
                   "--no-trajectory"])
        assert rc == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_metrics_out_captures_bench_session(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        rc = main(["bench", "run", *FAST, "--out", "", "--no-trajectory",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["bench_runs_total"] == 1.0
        assert "bench_wall_s{bench=micro.pseudo.batch}" in snap["histograms"]


class TestBenchCompare:
    def test_ok_exit_0(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        save_result(_doc(1.0), base)
        assert main(["bench", "compare", str(base), str(base)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exit_1(self, tmp_path, capsys):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        save_result(_doc(1.0), base)
        save_result(_doc(2.0), cur)
        assert main(["bench", "compare", str(base), str(cur)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_warn_only_exit_0(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        save_result(_doc(1.0), base)
        save_result(_doc(2.0), cur)
        assert main(["bench", "compare", str(base), str(cur),
                     "--warn-only"]) == 0

    def test_threshold_flag(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        save_result(_doc(1.0), base)
        save_result(_doc(2.0), cur)
        assert main(["bench", "compare", str(base), str(cur),
                     "--threshold", "150"]) == 0

    def test_threshold_for_flag(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        save_result(_doc(1.0), base)
        save_result(_doc(2.0), cur)
        assert main(["bench", "compare", str(base), str(cur),
                     "--threshold-for", "micro.pseudo.batch=150"]) == 0

    def test_bad_threshold_for_exits_2(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        save_result(_doc(1.0), base)
        assert main(["bench", "compare", str(base), str(base),
                     "--threshold-for", "garbage"]) == 2
        assert "NAME=PERCENT" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        save_result(_doc(1.0), base)
        rc = main(["bench", "compare", str(tmp_path / "nope.json"),
                   str(base)])
        assert rc == 2
        assert capsys.readouterr().err

    def test_invalid_schema_exits_2(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        bad = tmp_path / "bad.json"
        save_result(_doc(1.0), base)
        bad.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
        assert main(["bench", "compare", str(base), str(bad)]) == 2

    def test_json_rows(self, tmp_path, capsys):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        save_result(_doc(1.0), base)
        save_result(_doc(2.0), cur)
        assert main(["bench", "compare", str(base), str(cur),
                     "--format", "json"]) == 1
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert rows[0]["status"] == "regression"
        assert rows[0]["delta"] == pytest.approx(1.0)
