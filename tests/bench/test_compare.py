"""Unit tests for the regression comparator: edge cases and exit codes."""

import pytest

from repro.bench import (compare_results, exit_code, has_regressions,
                         render_rows)
from repro.bench.compare import MIN_BASE_S
from repro.bench.schema import build_result, stat_summary


def _doc(**wall_min):
    """Result document with one benchmark per kwarg (value = min wall s)."""
    entries = [
        {"name": name, "tier": name.split(".", 1)[0], "description": "",
         "repeats": 1, "warmup": 0, "wall_s": stat_summary([w]),
         "cpu_s": stat_summary([w]), "peak_mem_kb": 1.0, "extra": {}}
        for name, w in wall_min.items()
    ]
    return build_result(entries, seed=0, created_unix=0.0)


def _row(rows, name):
    return next(r for r in rows if r["name"] == name)


class TestStatuses:
    def test_ok_faster_regression(self):
        base = _doc(**{"micro.a": 1.0, "micro.b": 1.0, "micro.c": 1.0})
        cur = _doc(**{"micro.a": 1.1, "micro.b": 0.5, "micro.c": 1.5})
        rows = compare_results(base, cur, threshold=0.35)
        assert _row(rows, "micro.a")["status"] == "ok"
        assert _row(rows, "micro.b")["status"] == "faster"
        assert _row(rows, "micro.c")["status"] == "regression"
        assert has_regressions(rows)

    def test_missing_from_current_gates(self):
        rows = compare_results(_doc(**{"micro.gone": 1.0}), _doc())
        assert rows[0]["status"] == "missing"
        assert exit_code(rows) == 1

    def test_new_in_current_never_fails(self):
        rows = compare_results(_doc(), _doc(**{"micro.new": 1.0}))
        assert rows[0]["status"] == "new"
        assert exit_code(rows) == 0

    def test_failures_sorted_first(self):
        base = _doc(**{"micro.a": 1.0, "micro.z": 1.0})
        cur = _doc(**{"micro.a": 1.0, "micro.z": 9.0})
        rows = compare_results(base, cur)
        assert rows[0]["name"] == "micro.z"


class TestThresholds:
    def test_boundary_is_inclusive(self):
        """delta exactly at the limit is ok; just above gates.

        Uses a binary-exact threshold (0.25) so the boundary really is hit.
        """
        base = _doc(**{"micro.a": 1.0})
        at = compare_results(base, _doc(**{"micro.a": 1.25}), threshold=0.25)
        above = compare_results(base, _doc(**{"micro.a": 1.2500001}),
                                threshold=0.25)
        assert at[0]["status"] == "ok"
        assert above[0]["status"] == "regression"

    def test_zero_baseline_floored(self):
        """A ~0s baseline must not turn jitter into a huge regression."""
        base = _doc(**{"micro.tiny": 0.0})
        cur = _doc(**{"micro.tiny": 0.2 * MIN_BASE_S})
        rows = compare_results(base, cur, threshold=0.35)
        assert rows[0]["status"] == "ok"
        assert rows[0]["delta"] == pytest.approx(0.2)

    def test_near_zero_baseline_real_regression_still_gates(self):
        base = _doc(**{"micro.tiny": 0.5 * MIN_BASE_S})
        cur = _doc(**{"micro.tiny": 100 * MIN_BASE_S})
        rows = compare_results(base, cur, threshold=0.35)
        assert rows[0]["status"] == "regression"

    def test_per_bench_override(self):
        base = _doc(**{"micro.a": 1.0, "micro.b": 1.0})
        cur = _doc(**{"micro.a": 1.5, "micro.b": 1.5})
        rows = compare_results(base, cur, threshold=0.35,
                               per_bench={"micro.a": 0.6})
        assert _row(rows, "micro.a")["status"] == "ok"
        assert _row(rows, "micro.b")["status"] == "regression"

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            compare_results(_doc(), _doc(), threshold=-0.1)
        with pytest.raises(ValueError):
            compare_results(_doc(**{"micro.a": 1.0}),
                            _doc(**{"micro.a": 1.0}),
                            per_bench={"micro.a": -1.0})


class TestExitAndRender:
    def test_warn_only(self):
        rows = compare_results(_doc(**{"micro.a": 1.0}),
                               _doc(**{"micro.a": 9.0}))
        assert exit_code(rows) == 1
        assert exit_code(rows, warn_only=True) == 0

    def test_render_empty(self):
        assert "no benchmarks" in render_rows([])

    def test_render_table(self):
        base = _doc(**{"micro.a": 1.0, "micro.gone": 1.0})
        cur = _doc(**{"micro.a": 2.0, "micro.new": 1.0})
        text = render_rows(compare_results(base, cur))
        assert "regression" in text
        assert "missing" in text
        assert "new" in text
        assert "failing" in text
