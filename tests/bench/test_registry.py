"""Unit tests for the benchmark registry."""

import pytest

from repro.bench import Benchmark, BenchmarkRegistry, builtin_registry


def _noop_setup(rng):
    def payload():
        return None
    return payload


class TestBenchmark:
    def test_tier_from_name(self):
        b = Benchmark(name="micro.mna.solve", setup=_noop_setup)
        assert b.tier == "micro"
        assert Benchmark(name="macro.run.x", setup=_noop_setup).tier == "macro"

    def test_bad_tier_raises(self):
        with pytest.raises(ValueError, match="tier"):
            Benchmark(name="nano.mna.solve", setup=_noop_setup)

    def test_bad_counts_raise(self):
        with pytest.raises(ValueError):
            Benchmark(name="micro.x", setup=_noop_setup, repeats=0)
        with pytest.raises(ValueError):
            Benchmark(name="micro.x", setup=_noop_setup, warmup=-1)


class TestRegistry:
    def test_add_get_contains(self):
        reg = BenchmarkRegistry()
        b = reg.add(Benchmark(name="micro.a", setup=_noop_setup))
        assert reg.get("micro.a") is b
        assert "micro.a" in reg
        assert len(reg) == 1

    def test_duplicate_raises(self):
        reg = BenchmarkRegistry()
        reg.add(Benchmark(name="micro.a", setup=_noop_setup))
        with pytest.raises(ValueError, match="already registered"):
            reg.add(Benchmark(name="micro.a", setup=_noop_setup))

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            BenchmarkRegistry().get("micro.nope")

    def test_register_decorator(self):
        reg = BenchmarkRegistry()

        @reg.register("micro.deco", description="d", repeats=2, warmup=0)
        def setup(rng):
            return _noop_setup(rng)

        b = reg.get("micro.deco")
        assert b.setup is setup
        assert (b.repeats, b.warmup, b.description) == (2, 0, "d")

    def test_select_prefix_boundary(self):
        reg = BenchmarkRegistry()
        for name in ("micro.mna.solve", "micro.mnax.solve", "macro.run.a"):
            reg.add(Benchmark(name=name, setup=_noop_setup))
        assert [b.name for b in reg.select(["micro.mna"])] == \
            ["micro.mna.solve"]
        assert [b.name for b in reg.select(["micro.mna.solve"])] == \
            ["micro.mna.solve"]
        assert len(reg.select(["micro"])) == 2
        assert len(reg.select([])) == 3
        assert reg.select(["nope"]) == []

    def test_select_multiple_filters_no_duplicates(self):
        reg = BenchmarkRegistry()
        reg.add(Benchmark(name="micro.a.b", setup=_noop_setup))
        got = reg.select(["micro", "micro.a"])
        assert [b.name for b in got] == ["micro.a.b"]


class TestBuiltinRegistry:
    def test_builtin_suites_registered(self):
        reg = builtin_registry()
        names = reg.names()
        assert "micro.mna.solve" in names
        assert "micro.spice.ac-sweep" in names
        assert "micro.pseudo.all" in names
        assert "macro.run.sphere" in names
        tiers = {b.tier for b in reg}
        assert tiers == {"micro", "macro"}

    def test_idempotent(self):
        assert builtin_registry() is builtin_registry()
