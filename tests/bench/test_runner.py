"""Unit tests for the benchmark runner: determinism, measurement, telemetry."""

import numpy as np
import pytest

from repro.bench import (Benchmark, BenchmarkRegistry, bench_rng,
                         render_result, run_benchmark, run_benchmarks,
                         validate_result)
from repro.obs import MetricsRegistry, Telemetry


def _recording_registry(captured):
    """A registry whose setups record the inputs they derive from the rng."""
    reg = BenchmarkRegistry()

    @reg.register("micro.rec.a", repeats=2, warmup=1)
    def _a(rng):
        vals = rng.uniform(size=8)
        captured.setdefault("micro.rec.a", []).append(vals)

        def payload():
            return {"checksum": float(vals.sum())}

        return payload

    @reg.register("micro.rec.b", repeats=2, warmup=0)
    def _b(rng):
        vals = rng.normal(size=4)
        captured.setdefault("micro.rec.b", []).append(vals)

        def payload():
            return None

        return payload

    return reg


class TestDeterminism:
    def test_bench_rng_stable_and_distinct(self):
        a1 = bench_rng("micro.x", 0).uniform(size=4)
        a2 = bench_rng("micro.x", 0).uniform(size=4)
        b = bench_rng("micro.y", 0).uniform(size=4)
        other_seed = bench_rng("micro.x", 1).uniform(size=4)
        np.testing.assert_array_equal(a1, a2)
        assert not np.array_equal(a1, b)
        assert not np.array_equal(a1, other_seed)

    def test_same_seed_same_inputs(self):
        captured = {}
        reg = _recording_registry(captured)
        run_benchmarks(reg, seed=7)
        run_benchmarks(reg, seed=7)
        for name in ("micro.rec.a", "micro.rec.b"):
            first, second = captured[name]
            np.testing.assert_array_equal(first, second)

    def test_filtered_run_sees_identical_inputs(self):
        """A filtered run must time exactly the work of a full run."""
        captured = {}
        reg = _recording_registry(captured)
        run_benchmarks(reg, seed=3)
        run_benchmarks(reg, filters=["micro.rec.b"], seed=3)
        first, second = captured["micro.rec.b"]
        np.testing.assert_array_equal(first, second)


class TestRunBenchmark:
    def test_entry_shape_and_extra(self):
        captured = {}
        reg = _recording_registry(captured)
        entry = run_benchmark(reg.get("micro.rec.a"), seed=0)
        assert entry["name"] == "micro.rec.a"
        assert entry["tier"] == "micro"
        assert entry["repeats"] == 2
        assert len(entry["wall_s"]["values"]) == 2
        assert len(entry["cpu_s"]["values"]) == 2
        assert entry["peak_mem_kb"] >= 0
        assert "checksum" in entry["extra"]

    def test_overrides(self):
        reg = _recording_registry({})
        entry = run_benchmark(reg.get("micro.rec.a"), repeats=4, warmup=0)
        assert entry["repeats"] == 4
        assert entry["warmup"] == 0
        assert len(entry["wall_s"]["values"]) == 4

    def test_cleanup_called_once(self):
        calls = []
        reg = BenchmarkRegistry()

        @reg.register("micro.clean", repeats=1, warmup=0)
        def _setup(rng):
            def payload():
                return None

            def cleanup():
                calls.append(1)

            return payload, cleanup

        run_benchmark(reg.get("micro.clean"))
        assert calls == [1]

    def test_cleanup_called_on_payload_error(self):
        calls = []
        reg = BenchmarkRegistry()

        @reg.register("micro.boom", repeats=1, warmup=0)
        def _setup(rng):
            def payload():
                raise RuntimeError("boom")

            def cleanup():
                calls.append(1)

            return payload, cleanup

        with pytest.raises(RuntimeError):
            run_benchmark(reg.get("micro.boom"))
        assert calls == [1]

    def test_bad_setup_return_raises(self):
        reg = BenchmarkRegistry()

        @reg.register("micro.bad", repeats=1, warmup=0)
        def _setup(rng):
            return 42

        with pytest.raises(TypeError, match="callable payload"):
            run_benchmark(reg.get("micro.bad"))

    def test_profile_hotspots(self):
        reg = _recording_registry({})
        entry = run_benchmark(reg.get("micro.rec.a"), profile=True,
                              profile_top=3)
        spots = entry["extra"]["hotspots"]
        assert 0 < len(spots) <= 3
        assert {"func", "ncalls", "tottime_s", "cumtime_s"} <= set(spots[0])

    def test_telemetry_metrics(self):
        metrics = MetricsRegistry()
        reg = _recording_registry({})
        run_benchmarks(reg, telemetry=Telemetry(metrics=metrics))
        assert metrics.counter_value("bench_runs_total") == 2
        stats = metrics.histogram_stats("bench_wall_s", bench="micro.rec.a")
        assert stats["count"] == 1


class TestRunBenchmarks:
    def test_document_is_schema_valid(self):
        reg = _recording_registry({})
        doc = run_benchmarks(reg, seed=5)
        assert validate_result(doc) == []
        assert doc["seed"] == 5
        assert [e["name"] for e in doc["benchmarks"]] == \
            ["micro.rec.a", "micro.rec.b"]

    def test_no_match_raises(self):
        reg = _recording_registry({})
        with pytest.raises(ValueError, match="no benchmarks match"):
            run_benchmarks(reg, filters=["macro"])

    def test_progress_callback(self):
        lines = []
        reg = _recording_registry({})
        run_benchmarks(reg, progress=lines.append)
        assert len(lines) == 2
        assert "micro.rec.a" in lines[0]

    def test_render_result(self):
        reg = _recording_registry({})
        doc = run_benchmarks(reg, profile=True)
        text = render_result(doc)
        assert "micro.rec.a" in text
        assert "wall min" in text
