"""Unit tests for the bench result schema and (de)serialization."""

import json

import pytest

from repro.bench import (SCHEMA_VERSION, build_result, load_result,
                         machine_fingerprint, save_result, validate_result)
from repro.bench.schema import ensure_valid, stat_summary


def _entry(name="micro.x", wall=(0.2, 0.3), cpu=(0.1, 0.2)):
    return {
        "name": name, "tier": name.split(".", 1)[0], "description": "",
        "repeats": len(wall), "warmup": 1,
        "wall_s": stat_summary(wall), "cpu_s": stat_summary(cpu),
        "peak_mem_kb": 12.0, "extra": {},
    }


class TestStatSummary:
    def test_stats(self):
        s = stat_summary([0.2, 0.4])
        assert s["min"] == pytest.approx(0.2)
        assert s["mean"] == pytest.approx(0.3)
        assert s["median"] == pytest.approx(0.3)
        assert s["values"] == [0.2, 0.4]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stat_summary([])


class TestValidate:
    def test_valid_document(self):
        doc = build_result([_entry()], seed=0, created_unix=123.0)
        assert validate_result(doc) == []
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["created_unix"] == 123.0

    def test_machine_fingerprint_keys(self):
        fp = machine_fingerprint()
        assert {"platform", "python", "numpy", "cpu_count", "arch"} \
            <= set(fp)

    def test_non_dict(self):
        assert validate_result([1, 2]) != []

    def test_wrong_schema_name_and_version(self):
        doc = build_result([_entry()], seed=0)
        doc["schema"] = "other/thing"
        doc["schema_version"] = 99
        problems = "; ".join(validate_result(doc))
        assert "schema is" in problems
        assert "schema_version" in problems

    def test_duplicate_names(self):
        doc = build_result([_entry("micro.x"), _entry("micro.x")], seed=0)
        assert any("duplicate" in p for p in validate_result(doc))

    def test_missing_stats(self):
        bad = _entry()
        del bad["wall_s"]["min"]
        doc = build_result([bad], seed=0)
        assert any("wall_s" in p for p in validate_result(doc))

    def test_negative_sample(self):
        bad = _entry()
        bad["cpu_s"]["values"] = [-1.0]
        doc = build_result([bad], seed=0)
        assert any("bad sample" in p for p in validate_result(doc))

    def test_ensure_valid_raises(self):
        with pytest.raises(ValueError, match="invalid bench"):
            ensure_valid({"schema": "nope"})


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        doc = build_result([_entry(), _entry("macro.y")], seed=3,
                           created_unix=1.5)
        path = tmp_path / "perf" / "result.json"
        save_result(doc, path)
        assert load_result(path) == doc

    def test_save_rejects_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            save_result({"schema": "nope"}, tmp_path / "r.json")

    def test_load_rejects_bad_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_result(p)

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "wrong.json"
        p.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_result(p)

    def test_deterministic_serialization(self, tmp_path):
        doc = build_result([_entry()], seed=0, created_unix=2.0)
        a = save_result(doc, tmp_path / "a.json").read_text()
        b = save_result(doc, tmp_path / "b.json").read_text()
        assert a == b
