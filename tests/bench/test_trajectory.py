"""Unit tests for the BENCH_core.json trajectory file."""

import json

import pytest

from repro.bench import append_entry, load_trajectory
from repro.bench.schema import build_result, stat_summary
from repro.bench.trajectory import TRAJECTORY_SCHEMA, condense


def _doc(wall=0.5):
    entry = {"name": "micro.a", "tier": "micro", "description": "",
             "repeats": 1, "warmup": 0, "wall_s": stat_summary([wall]),
             "cpu_s": stat_summary([wall]), "peak_mem_kb": 1.0, "extra": {}}
    return build_result([entry], seed=4, created_unix=99.0)


class TestTrajectory:
    def test_condense(self):
        c = condense(_doc(0.25))
        assert c["seed"] == 4
        assert c["created_unix"] == 99.0
        assert c["wall_min_s"] == {"micro.a": 0.25}
        assert c["platform"]

    def test_fresh_document_when_absent(self, tmp_path):
        doc = load_trajectory(tmp_path / "BENCH_core.json")
        assert doc["schema"] == TRAJECTORY_SCHEMA
        assert doc["entries"] == []

    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_core.json"
        append_entry(path, _doc(0.5))
        doc = append_entry(path, _doc(0.4))
        assert len(doc["entries"]) == 2
        assert doc["entries"][-1]["wall_min_s"]["micro.a"] == 0.4
        assert load_trajectory(path) == doc

    def test_truncation(self, tmp_path):
        path = tmp_path / "BENCH_core.json"
        for i in range(5):
            doc = append_entry(path, _doc(float(i + 1)), max_entries=3)
        assert len(doc["entries"]) == 3
        assert doc["entries"][0]["wall_min_s"]["micro.a"] == 3.0

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "BENCH_core.json"
        path.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
        with pytest.raises(ValueError, match="trajectory"):
            load_trajectory(path)
