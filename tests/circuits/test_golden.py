"""Golden-value regression tests for the circuit benches.

These pin the measured metrics of the validated reference sizings within
loose tolerances.  They are deliberately the *only* tests sensitive to
simulator numerics: if a model or solver change shifts these, every
calibration note in DESIGN.md/EXPERIMENTS.md needs re-checking — fail loud.
"""

import pytest

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
from tests.circuits.test_ldo import GOOD as LDO_GOOD
from tests.circuits.test_ota import GOOD as OTA_GOOD
from tests.circuits.test_tia import GOOD as TIA_GOOD


class TestOTAGolden:
    @pytest.fixture(scope="class")
    def metrics(self):
        return TwoStageOTA(fidelity="fast").measure(OTA_GOOD)

    def test_power(self, metrics):
        assert metrics["power"] == pytest.approx(0.50e-3, rel=0.15)

    def test_dc_gain(self, metrics):
        assert metrics["dc_gain"] == pytest.approx(74.6, abs=3.0)

    def test_ugf(self, metrics):
        assert metrics["ugf"] == pytest.approx(42e6, rel=0.2)

    def test_pm(self, metrics):
        assert metrics["pm"] == pytest.approx(62.0, abs=5.0)

    def test_cmrr_psrr(self, metrics):
        assert metrics["cmrr"] == pytest.approx(89.5, abs=5.0)
        assert metrics["psrr"] == pytest.approx(80.2, abs=5.0)

    def test_swing(self, metrics):
        assert metrics["swing"] == pytest.approx(1.6, abs=0.05)

    def test_settling(self, metrics):
        assert metrics["settling"] == pytest.approx(22e-9, rel=0.5)

    def test_noise(self, metrics):
        assert metrics["noise"] == pytest.approx(4.4e-4, rel=0.5)


class TestTIAGolden:
    @pytest.fixture(scope="class")
    def metrics(self):
        return ThreeStageTIA(fidelity="fast").measure(TIA_GOOD)

    def test_power(self, metrics):
        assert metrics["power"] == pytest.approx(4.6e-3, rel=0.15)

    def test_gain(self, metrics):
        assert metrics["dc_gain"] == pytest.approx(97.6, abs=4.0)

    def test_ugf(self, metrics):
        assert metrics["ugf"] == pytest.approx(1.25e9, rel=0.25)

    def test_zt_tracks_feedback_r(self, metrics):
        assert metrics["zt_ohm"] == pytest.approx(15e3, rel=0.2)

    def test_noise(self, metrics):
        assert metrics["in_noise"] == pytest.approx(6.6e-12, rel=0.5)


class TestLDOGolden:
    @pytest.fixture(scope="class")
    def metrics(self):
        return LDORegulator(fidelity="fast").measure(LDO_GOOD)

    def test_vout(self, metrics):
        assert metrics["vout"] == pytest.approx(1.80, abs=0.02)

    def test_qc(self, metrics):
        assert metrics["qc"] == pytest.approx(0.152e-3, rel=0.2)

    def test_load_reg(self, metrics):
        assert metrics["load_reg"] < 0.1

    def test_psrr(self, metrics):
        assert metrics["psrr"] > 60.0

    def test_transients_settle(self, metrics):
        for key in ("t_load_up", "t_load_dn", "t_line_up", "t_line_dn"):
            assert metrics[key] < 35e-6
