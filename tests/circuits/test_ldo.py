"""Behavioural tests for the LDO regulator task."""

import numpy as np
import pytest

from repro.circuits import LDORegulator
from repro.circuits.ldo import I_LOAD_NOM, VREF, build_ldo
from repro.spice import operating_point

GOOD = {
    "L1": 1.0, "L2": 1.0, "L3": 2.0, "L4": 0.32, "L5": 2.0,
    "W1": 60.0, "W2": 30.0, "W3": 2.0, "W4": 200.0, "W5": 2.0,
    "R1": 20.0, "R2": 20.0, "C": 300.0,
    "N1": 2, "N2": 20, "N3": 1,
}


@pytest.fixture(scope="module")
def task():
    return LDORegulator(fidelity="fast")


@pytest.fixture(scope="module")
def good_metrics(task):
    return task.measure(GOOD)


class TestNetlist:
    def test_reference_and_divider(self):
        ckt = build_ldo(GOOD)
        assert "Vref" in ckt and "R1" in ckt and "R2" in ckt

    def test_regulation_point(self):
        op = operating_point(build_ldo(GOOD))
        # equal divider: fb ~ vref, vout ~ 2*vref
        assert op.v("fb") == pytest.approx(VREF, abs=0.02)
        assert op.v("vout") == pytest.approx(2 * VREF, abs=0.05)

    def test_pass_device_carries_load(self):
        op = operating_point(build_ldo(GOOD))
        i_pass = abs(op.element_info("MP")["id"])
        assert i_pass == pytest.approx(I_LOAD_NOM, rel=0.2)

    def test_unequal_divider_shifts_vout(self):
        params = dict(GOOD, R1=30.0, R2=20.0)
        op = operating_point(build_ldo(params))
        assert op.v("vout") == pytest.approx(VREF * (1 + 30 / 20), abs=0.1)


class TestMetrics:
    def test_all_metrics_present(self, task, good_metrics):
        for name in task.metric_names:
            assert name in good_metrics, name

    def test_good_design_feasible(self, task):
        mv = task.evaluate(task.space.normalize(GOOD))
        assert task.is_feasible(mv)

    def test_quiescent_current_excludes_load(self, good_metrics):
        assert 0.0 < good_metrics["qc"] < 5e-3

    def test_vout_in_window(self, good_metrics):
        assert 1.75 < good_metrics["vout"] < 1.85

    def test_divider_current_in_qc(self, task):
        """Smaller divider resistors burn more quiescent current."""
        hungry = dict(GOOD, R1=2.0, R2=2.0)
        qc_hungry = task.measure(hungry)["qc"]
        qc_good = task.measure(GOOD)["qc"]
        assert qc_hungry > qc_good + 1e-4


class TestRobustness:
    def test_corners_finite(self, task):
        for u in (np.zeros(task.d), np.ones(task.d)):
            assert np.all(np.isfinite(task.evaluate(u)))

    def test_failed_op_gives_infeasible(self, task):
        mv = task.evaluate(np.zeros(task.d))
        assert not task.is_feasible(mv)
