"""Behavioural tests for the two-stage OTA task (few, real simulations)."""

import numpy as np
import pytest

from repro.circuits import TwoStageOTA
from repro.circuits.ota import VDD, build_ota
from repro.spice import operating_point

# A known-good sizing (validated during bench calibration).
GOOD = {
    "L1": 0.4, "L2": 0.5, "L3": 1.0, "L4": 0.5, "L5": 0.5,
    "W1": 60.0, "W2": 15.0, "W3": 20.0, "W4": 30.0, "W5": 10.0,
    "R": 57.5, "C": 300.0, "Cf": 800.0,
    "N1": 1, "N2": 10, "N3": 10,
}


@pytest.fixture(scope="module")
def task():
    return TwoStageOTA(fidelity="fast")


@pytest.fixture(scope="module")
def good_metrics(task):
    return task.measure(GOOD)


class TestNetlist:
    def test_node_set(self):
        ckt = build_ota(GOOD)
        for node in ("vdd", "inn", "inp", "tail", "d1", "out1", "out", "nb"):
            assert ckt.node_index(node) >= 0

    def test_closed_loop_removes_vn(self):
        ckt = build_ota(GOOD, closed_loop=True)
        assert "Vn" not in ckt
        assert "Rfb" in ckt

    def test_multipliers_applied(self):
        ckt = build_ota(GOOD)
        assert ckt["M6"].m == 10
        assert ckt["M7"].m == 10

    def test_symmetric_first_stage_op(self):
        op = operating_point(build_ota(GOOD))
        # matched pair + mirror: out1 ~ d1
        assert abs(op.v("out1") - op.v("d1")) < 0.05

    def test_second_stage_quiescent_match(self):
        op = operating_point(build_ota(GOOD, closed_loop=True))
        i6 = abs(op.element_info("M6")["id"])
        i7 = abs(op.element_info("M7")["id"])
        assert i6 == pytest.approx(i7, rel=1e-3)


class TestMetrics(object):
    def test_all_metrics_present(self, task, good_metrics):
        for name in task.metric_names:
            assert name in good_metrics, name

    def test_good_design_feasible(self, task, good_metrics):
        mv = task.evaluate(task.space.normalize(GOOD))
        assert task.is_feasible(mv)

    def test_power_reasonable(self, good_metrics):
        assert 1e-5 < good_metrics["power"] < 1e-2

    def test_gain_above_spec(self, good_metrics):
        assert good_metrics["dc_gain"] > 60.0

    def test_swing_below_supply(self, good_metrics):
        assert 0.0 < good_metrics["swing"] < VDD

    def test_settling_positive(self, good_metrics):
        assert 0.0 < good_metrics["settling"] < 400e-9

    def test_bias_resistor_controls_power(self, task):
        lo_r = dict(GOOD, R=20.0)
        hi_r = dict(GOOD, R=100.0)
        p_lo = task.measure(lo_r)["power"]
        p_hi = task.measure(hi_r)["power"]
        assert p_lo > p_hi  # smaller bias resistor -> more current


class TestRobustness:
    def test_extreme_corner_returns_finite_vector(self, task):
        mv = task.evaluate(np.zeros(task.d))
        assert np.all(np.isfinite(mv))

    def test_opposite_corner_finite(self, task):
        mv = task.evaluate(np.ones(task.d))
        assert np.all(np.isfinite(mv))

    def test_corner_is_infeasible(self, task):
        assert not task.is_feasible(task.evaluate(np.zeros(task.d)))

    def test_task_picklable(self, task):
        import pickle

        clone = pickle.loads(pickle.dumps(task))
        assert clone.d == task.d
