"""PVT-awareness tests for the circuit tasks."""

import pytest

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
from tests.circuits.test_ota import GOOD as OTA_GOOD


class TestTemperature:
    def test_tasks_accept_temp(self):
        for cls in (TwoStageOTA, ThreeStageTIA, LDORegulator):
            task = cls(temp_c=85.0)
            assert task.temp_c == 85.0
            assert "85" in task.nmos.name

    def test_hot_ota_burns_more_power(self):
        hot = TwoStageOTA(temp_c=125.0)
        nom = TwoStageOTA()
        u_hot = hot.space.normalize(OTA_GOOD)
        p_hot = hot.evaluate(u_hot)[0]
        p_nom = nom.evaluate(u_hot)[0]
        # the bias resistor current rises as VGS(MB) drops with temperature
        assert p_hot > p_nom

    def test_hot_ota_loses_gain(self):
        hot = TwoStageOTA(temp_c=125.0)
        nom = TwoStageOTA()
        u = nom.space.normalize(OTA_GOOD)
        assert hot.evaluate(u)[1] < nom.evaluate(u)[1]

    def test_none_temp_is_nominal(self):
        task = TwoStageOTA()
        assert task.temp_c is None
        assert task.nmos.name == "nmos180"


class TestCornerTimesTemperature:
    def test_combined_pvt(self):
        task = TwoStageOTA(corner="ss", temp_c=125.0)
        # slow corner raises vto by 50 mV, heat drops it ~0.1 V: both applied
        assert "125" in task.nmos.name
        nominal = TwoStageOTA()
        assert task.nmos.kp < nominal.nmos.kp  # ss and heat both degrade kp
