"""The design spaces must match the paper's Tables I, III and V exactly."""

import pytest

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA


class TestTable1OTA:
    @pytest.fixture(scope="class")
    def task(self):
        return TwoStageOTA()

    def test_dimensionality(self, task):
        assert task.d == 16  # paper: "total 16 design parameters"

    def test_length_ranges(self, task):
        for i in range(1, 6):
            p = task.space[f"L{i}"]
            assert (p.low, p.high) == (0.18, 2.0)
            assert not p.integer

    def test_width_ranges(self, task):
        for i in range(1, 6):
            p = task.space[f"W{i}"]
            assert (p.low, p.high) == (0.22, 150.0)

    def test_r_c_cf_ranges(self, task):
        assert (task.space["R"].low, task.space["R"].high) == (0.1, 100.0)
        assert (task.space["C"].low, task.space["C"].high) == (100.0, 2000.0)
        assert (task.space["Cf"].low, task.space["Cf"].high) == (100.0, 10000.0)

    def test_multipliers_integer(self, task):
        for i in range(1, 4):
            p = task.space[f"N{i}"]
            assert p.integer
            assert (p.low, p.high) == (1, 20)

    def test_constraint_set_eq7(self, task):
        specs = {s.name: (s.kind, s.bound) for s in task.specs}
        assert specs["dc_gain"] == (">", 60.0)
        assert specs["cmrr"] == (">", 80.0)
        assert specs["psrr"] == (">", 80.0)
        assert specs["pm"] == (">", 60.0)
        assert specs["settling"] == ("<", 100e-9)
        assert specs["ugf"] == (">", 30e6)
        assert specs["swing"] == (">", 1.5)
        assert specs["noise"] == ("<", 30e-3)
        assert task.target.name == "power"


class TestTable3TIA:
    @pytest.fixture(scope="class")
    def task(self):
        return ThreeStageTIA()

    def test_dimensionality(self, task):
        assert task.d == 15  # paper: "total 15 design parameters"

    def test_ranges(self, task):
        assert (task.space["L1"].low, task.space["L1"].high) == (0.18, 2.0)
        assert (task.space["W1"].low, task.space["W1"].high) == (0.22, 150.0)
        assert (task.space["R"].low, task.space["R"].high) == (0.1, 100.0)
        assert (task.space["Cf"].low, task.space["Cf"].high) == (100.0, 2000.0)

    def test_constraint_set_eq8(self, task):
        specs = {s.name: (s.kind, s.bound) for s in task.specs}
        assert specs["dc_gain"] == (">", 80.0)
        assert specs["ugf"] == (">", 1e9)
        assert specs["in_noise"] == ("<", 10e-12)
        assert task.target.name == "power"


class TestTable5LDO:
    @pytest.fixture(scope="class")
    def task(self):
        return LDORegulator()

    def test_dimensionality(self, task):
        assert task.d == 16  # paper: "total 16 design parameters"

    def test_ranges(self, task):
        assert (task.space["L1"].low, task.space["L1"].high) == (0.32, 3.0)
        assert (task.space["W1"].low, task.space["W1"].high) == (0.22, 200.0)
        assert (task.space["R1"].low, task.space["R1"].high) == (1.0, 100.0)
        assert (task.space["R2"].low, task.space["R2"].high) == (1.0, 100.0)
        assert (task.space["C"].low, task.space["C"].high) == (100.0, 2000.0)

    def test_constraint_set_eq9(self, task):
        specs = {s.name: (s.kind, s.bound) for s in task.specs}
        assert specs["vout"] == (">", 1.75)
        assert specs["vout_hi"] == ("<", 1.85)
        assert specs["load_reg"] == ("<", 0.1)
        assert specs["line_reg"] == ("<", 0.1)
        for key in ("t_load_up", "t_load_dn", "t_line_up", "t_line_dn"):
            assert specs[key] == ("<", 35e-6)
        assert specs["psrr"] == (">", 60.0)
        assert task.target.name == "qc"
        assert len(task.specs) == 9


class TestParameterTables:
    def test_table_rendering(self):
        from repro.experiments import parameter_table

        text = parameter_table(TwoStageOTA())
        assert "L1" in text and "W5" in text and "Cf" in text
        assert "[0.18, 2]" in text
