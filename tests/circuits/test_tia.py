"""Behavioural tests for the three-stage TIA task."""

import numpy as np
import pytest

from repro.circuits import ThreeStageTIA
from repro.circuits.tia import build_tia
from repro.spice import operating_point

GOOD = {
    "L1": 0.35, "L2": 0.35, "L3": 0.25, "L4": 0.8, "L5": 0.8,
    "W1": 80.0, "W2": 40.0, "W3": 80.0, "W4": 15.0, "W5": 7.0,
    "R": 15.0, "Cf": 100.0, "N1": 3, "N2": 3, "N3": 8,
}


@pytest.fixture(scope="module")
def task():
    return ThreeStageTIA(fidelity="fast")


@pytest.fixture(scope="module")
def good_metrics(task):
    return task.measure(GOOD)


class TestNetlist:
    def test_three_stages_present(self):
        ckt = build_tia(GOOD)
        for name in ("M1", "M2", "M3", "MP1", "MP2", "MP3"):
            assert name in ckt

    def test_feedback_injection_point(self):
        ckt = build_tia(GOOD)
        assert "Vinj" in ckt and "Rfb" in ckt and "Cfb" in ckt

    def test_dc_bias_sane(self):
        op = operating_point(build_tia(GOOD))
        # input node sits near an NMOS VGS, output follows via feedback
        assert 0.3 < op.v("in") < 1.0
        assert 0.3 < op.v("out") < 1.5


class TestMetrics:
    def test_all_metrics_present(self, task, good_metrics):
        for name in task.metric_names:
            assert name in good_metrics, name

    def test_good_design_feasible(self, task):
        mv = task.evaluate(task.space.normalize(GOOD))
        assert task.is_feasible(mv)

    def test_zt_close_to_feedback_r(self, good_metrics):
        """Closed-loop transimpedance ~ R_fb under high loop gain."""
        assert good_metrics["zt_ohm"] == pytest.approx(15e3, rel=0.2)

    def test_gain_bandwidth_tension(self, task):
        """Longer channels raise gain but depress UGF."""
        short = task.measure(dict(GOOD, L1=0.2, L2=0.2, L3=0.2))
        long_ = task.measure(dict(GOOD, L1=1.5, L2=1.5, L3=1.5))
        assert long_["dc_gain"] > short["dc_gain"]
        if "ugf" in short and "ugf" in long_:
            assert short["ugf"] > long_["ugf"]

    def test_noise_spot_positive(self, good_metrics):
        assert 0.0 < good_metrics["in_noise"] < 1e-9


class TestRobustness:
    def test_corners_finite(self, task):
        for u in (np.zeros(task.d), np.ones(task.d)):
            assert np.all(np.isfinite(task.evaluate(u)))
