"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def sphere_task():
    from repro.core.synthetic import ConstrainedSphere

    return ConstrainedSphere(d=6, seed=3)


@pytest.fixture
def toy_task():
    from repro.core.synthetic import QuadraticAmplifierToy

    return QuadraticAmplifierToy()
