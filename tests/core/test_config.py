"""Unit tests for MAOptConfig and the variant presets."""

import pytest

from repro.core.config import MAOptConfig, VariantPreset


class TestPresets:
    def test_dnn_opt_single_actor_no_ns(self):
        cfg = MAOptConfig.from_preset(VariantPreset.DNN_OPT)
        assert cfg.n_actors == 1
        assert cfg.near_sampling is False

    def test_ma_opt1_individual_elites(self):
        cfg = MAOptConfig.from_preset(VariantPreset.MA_OPT_1)
        assert cfg.n_actors == 3
        assert cfg.shared_elite is False
        assert cfg.near_sampling is False

    def test_ma_opt2_shared_no_ns(self):
        cfg = MAOptConfig.from_preset(VariantPreset.MA_OPT_2)
        assert cfg.n_actors == 3
        assert cfg.shared_elite is True
        assert cfg.near_sampling is False

    def test_ma_opt_full(self):
        cfg = MAOptConfig.from_preset(VariantPreset.MA_OPT)
        assert cfg.n_actors == 3
        assert cfg.shared_elite is True
        assert cfg.near_sampling is True

    def test_string_preset(self):
        cfg = MAOptConfig.from_preset("ma-opt")
        assert cfg.near_sampling is True

    def test_overrides_applied(self):
        cfg = MAOptConfig.from_preset("dnn-opt", n_elite=5, critic_steps=7)
        assert cfg.n_elite == 5
        assert cfg.critic_steps == 7

    def test_seed_override(self):
        cfg = MAOptConfig.from_preset("ma-opt", seed=99)
        assert cfg.seed == 99

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            MAOptConfig.from_preset("nope")


class TestValidation:
    def test_paper_defaults(self):
        cfg = MAOptConfig()
        assert cfg.n_actors == 3          # paper: N_act = 3
        assert cfg.t_ns == 5              # paper: T_NS = 5
        assert cfg.ns_samples == 2000     # paper: N_samples = 2000
        assert cfg.hidden == (100, 100)   # paper: 2 x 100 hidden

    @pytest.mark.parametrize("kwargs", [
        {"n_actors": 0},
        {"n_elite": 0},
        {"t_ns": 0},
        {"ns_phase": 7, "t_ns": 5},
        {"ns_samples": 0},
        {"ns_radius": 0.0},
        {"critic_steps": 0},
        {"batch_size": 0},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            MAOptConfig(**kwargs)
