"""Tests for per-round optimizer diagnostics."""

import numpy as np

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


class TestDiagnostics:
    def test_one_entry_per_round(self):
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST))
        opt.initialize(n_init=10)
        opt.step()
        opt.step()
        assert len(opt.diagnostics) == 2
        assert opt.diagnostics[0]["round"] == 1

    def test_actor_round_fields(self):
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, n_actors=3, **FAST))
        opt.initialize(n_init=10)
        opt.step()
        d = opt.diagnostics[0]
        assert d["kind"] == "actor"
        assert np.isfinite(d["critic_loss"])
        assert len(d["actor_losses"]) == 3
        assert 0.0 <= d["elite_box_width"] <= 1.0
        assert np.isfinite(d["best_fom"])

    def test_ns_round_fields(self):
        task = ConstrainedSphere(d=4, seed=0)
        cfg = MAOptConfig(seed=0, t_ns=1, ns_samples=50, **FAST)
        opt = MAOptimizer(task, cfg)
        opt.initialize(n_init=30)
        if not opt._specs_met():
            import pytest

            pytest.skip("init infeasible for this seed")
        opt.step()
        d = opt.diagnostics[0]
        assert d["kind"] == "ns"
        assert isinstance(d["improved"], bool)

    def test_diagnostics_in_result_meta(self):
        task = ConstrainedSphere(d=4, seed=0)
        res = MAOptimizer(task, MAOptConfig(seed=0, **FAST)).run(
            n_sims=6, n_init=8)
        assert "diagnostics" in res.meta
        assert len(res.meta["diagnostics"]) >= 2

    def test_best_fom_diag_matches_trace(self):
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST))
        opt.initialize(n_init=10)
        for _ in range(3):
            opt.step()
        for d in opt.diagnostics:
            assert d["best_fom"] <= opt.diagnostics[0]["best_fom"] + 1e-12
