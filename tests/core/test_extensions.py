"""Tests for the optional extensions (critic ensembles, proposal noise)."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.networks import Critic, CriticEnsemble
from repro.core.synthetic import ConstrainedSphere

FAST = dict(critic_steps=20, actor_steps=10, batch_size=16, n_elite=6)


class TestCriticEnsemble:
    def test_predict_is_member_mean(self, rng):
        ens = CriticEnsemble(3, 2, n_members=3, hidden=(8,), seed=0)
        x = rng.uniform(size=(5, 3))
        dx = rng.uniform(size=(5, 3)) * 0.1
        expected = np.mean([m.predict(x, dx) for m in ens.members], axis=0)
        np.testing.assert_allclose(ens.predict(x, dx), expected)

    def test_members_have_distinct_weights(self):
        ens = CriticEnsemble(3, 2, n_members=2, hidden=(8,), seed=0)
        w0 = ens.members[0].net.get_weights()[0]
        w1 = ens.members[1].net.get_weights()[0]
        assert not np.allclose(w0, w1)

    def test_shared_scaler(self, rng):
        ens = CriticEnsemble(3, 2, n_members=3, hidden=(8,), seed=0)
        ens.fit_scaler(rng.normal(5.0, 2.0, size=(20, 2)))
        for m in ens.members:
            assert m.scaler is ens.scaler

    def test_training_reduces_loss(self, rng):
        ens = CriticEnsemble(2, 1, n_members=2, hidden=(16,), lr=3e-3, seed=0)
        x = rng.uniform(size=(64, 2))
        dx = np.zeros_like(x)
        y = x.sum(axis=1, keepdims=True)
        ens.fit_scaler(y)
        inputs = np.concatenate([x, dx], axis=1)
        first = ens.train_step(inputs, y)
        for _ in range(150):
            last = ens.train_step(inputs, y)
        assert last < first

    def test_backward_matches_mean_of_members(self, rng):
        """Input gradient of the ensemble == mean of member input grads."""
        ens = CriticEnsemble(3, 2, n_members=2, hidden=(8,), seed=0)
        x = rng.uniform(size=(4, 6))
        out = ens.forward(x)
        grad = np.ones_like(out)
        din = ens.backward(grad)
        member_grads = []
        for m in ens.members:
            m.net.forward(x)
            member_grads.append(m.net.backward(grad))
        np.testing.assert_allclose(din, np.mean(member_grads, axis=0),
                                   atol=1e-12)

    def test_predict_std_positive(self, rng):
        ens = CriticEnsemble(3, 2, n_members=3, hidden=(8,), seed=0)
        std = ens.predict_std(rng.uniform(size=(5, 3)),
                              rng.uniform(size=(5, 3)))
        assert np.all(std >= 0.0)
        assert np.any(std > 0.0)

    def test_parameter_count_scales(self):
        single = CriticEnsemble(3, 2, n_members=1, hidden=(8,), seed=0)
        triple = CriticEnsemble(3, 2, n_members=3, hidden=(8,), seed=0)
        assert triple.parameter_count() == 3 * single.parameter_count()

    def test_bad_member_count_raises(self):
        with pytest.raises(ValueError):
            CriticEnsemble(3, 2, n_members=0)


class TestOptimizerWithExtensions:
    def test_multi_critic_run(self):
        task = ConstrainedSphere(d=5, seed=1)
        cfg = MAOptConfig(seed=0, n_critics=3, hidden=(16, 16), **FAST)
        res = MAOptimizer(task, cfg).run(n_sims=9, n_init=10)
        assert res.n_sims == 9
        assert res.best_fom <= res.init_best_fom

    def test_proposal_noise_changes_trajectory(self):
        task = ConstrainedSphere(d=5, seed=1)
        base = MAOptConfig(seed=0, hidden=(16, 16), **FAST)
        noisy = MAOptConfig(seed=0, hidden=(16, 16), proposal_noise=0.05,
                            **FAST)
        r1 = MAOptimizer(task, base).run(n_sims=9, n_init=10)
        r2 = MAOptimizer(task, noisy).run(n_sims=9, n_init=10)
        assert not np.allclose(r1.foms, r2.foms)

    def test_proposals_stay_in_cube_with_noise(self):
        task = ConstrainedSphere(d=5, seed=1)
        cfg = MAOptConfig(seed=0, hidden=(16, 16), proposal_noise=0.5, **FAST)
        res = MAOptimizer(task, cfg).run(n_sims=9, n_init=10)
        for r in res.records:
            assert np.all(r.x >= 0.0) and np.all(r.x <= 1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MAOptConfig(n_critics=0)
        with pytest.raises(ValueError):
            MAOptConfig(proposal_noise=-0.1)
