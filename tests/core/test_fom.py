"""Unit tests for the figure-of-merit function (Eq. 2)."""

import numpy as np
import pytest

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask, Spec, Target
from repro.core.space import DesignSpace, Parameter


class _StubTask(SizingTask):
    """Fixed specs so FoM values are hand-computable."""

    def __init__(self):
        self.name = "stub"
        self.space = DesignSpace([Parameter("x", 0, 1)])
        self.target = Target("t", weight=2.0)
        self.specs = [
            Spec("a", ">", 10.0, weight=1.0),
            Spec("b", "<", 4.0, weight=3.0),
        ]

    def simulate(self, u):  # pragma: no cover - unused
        return {}


@pytest.fixture
def fom():
    return FigureOfMerit(_StubTask())


class TestValue:
    def test_feasible_design_pure_target(self, fom):
        # a=20 satisfies >10; b=1 satisfies <4 -> g = w0 * t
        assert fom(np.array([0.5, 20.0, 1.0])) == pytest.approx(1.0)

    def test_single_violation_term(self, fom):
        # a=5: violation (10-5)/10 = 0.5, w=1 -> term 0.5
        g = fom(np.array([0.0, 5.0, 1.0]))
        assert g == pytest.approx(0.5)

    def test_violation_clipped_at_one(self, fom):
        # a=-1000: massive violation, clipped to 1
        g = fom(np.array([0.0, -1000.0, 1.0]))
        assert g == pytest.approx(1.0)

    def test_weight_scales_violation(self, fom):
        # b=5: violation (5-4)/4 = 0.25, w=3 -> 0.75
        g = fom(np.array([0.0, 20.0, 5.0]))
        assert g == pytest.approx(0.75)

    def test_target_weight_applied(self, fom):
        g = fom(np.array([3.0, 20.0, 1.0]))
        assert g == pytest.approx(6.0)

    def test_batch_matches_scalar(self, fom, rng):
        batch = rng.normal(size=(10, 3)) * 5 + 5
        gb = fom(batch)
        for k in range(10):
            assert gb[k] == pytest.approx(fom(batch[k]))

    def test_wrong_width_raises(self, fom):
        with pytest.raises(ValueError):
            fom(np.zeros(5))

    def test_max_penalty_is_m(self, fom):
        g = fom(np.array([0.0, -1e9, 1e9]))
        assert g == pytest.approx(2.0)


class TestGradient:
    def test_target_gradient_is_w0(self, fom):
        grad = fom.gradient(np.array([1.0, 20.0, 1.0]))
        assert grad[0] == pytest.approx(2.0)

    def test_satisfied_constraint_zero_gradient(self, fom):
        grad = fom.gradient(np.array([1.0, 20.0, 1.0]))
        assert grad[1] == 0.0
        assert grad[2] == 0.0

    def test_active_gt_constraint_negative_slope(self, fom):
        # a=5 -> in the active band; dg/da = -w/|c| = -0.1
        grad = fom.gradient(np.array([1.0, 5.0, 1.0]))
        assert grad[1] == pytest.approx(-0.1)

    def test_active_lt_constraint_positive_slope(self, fom):
        grad = fom.gradient(np.array([1.0, 20.0, 4.5]))
        assert grad[2] == pytest.approx(3.0 / 4.0)

    def test_saturated_violation_zero_gradient(self, fom):
        grad = fom.gradient(np.array([1.0, -1e9, 1.0]))
        assert grad[1] == 0.0

    def test_gradient_matches_finite_difference(self, fom, rng):
        for _ in range(20):
            mv = rng.uniform(-2, 25, size=3)
            grad = fom.gradient(mv)
            eps = 1e-7
            for j in range(3):
                hi = mv.copy()
                hi[j] += eps
                lo = mv.copy()
                lo[j] -= eps
                fd = (fom(hi) - fom(lo)) / (2 * eps)
                # skip kink points where the subgradient differs
                if abs(fd - grad[j]) > 1e-3:
                    wv = fom._weights * fom.violations(mv[None, :])[0]
                    near_kink = np.any(np.abs(wv) < 1e-5) or \
                        np.any(np.abs(wv - 1.0) < 1e-5)
                    assert near_kink, (mv, j, fd, grad[j])
                else:
                    assert grad[j] == pytest.approx(fd, abs=1e-5)


class TestFeasibility:
    def test_feasible_mask(self, fom):
        batch = np.array([
            [0.0, 20.0, 1.0],   # feasible
            [0.0, 5.0, 1.0],    # violates a
            [0.0, 20.0, 9.0],   # violates b
        ])
        np.testing.assert_array_equal(fom.is_feasible(batch),
                                      [True, False, False])

    def test_scalar_feasibility(self, fom):
        assert fom.is_feasible(np.array([0.0, 20.0, 1.0])) is True

    def test_boundary_counts_as_feasible(self, fom):
        assert fom.is_feasible(np.array([0.0, 10.0, 4.0])) is True
