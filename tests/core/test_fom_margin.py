"""Tests for margin-shifted FoM evaluation (near-sampling conservatism)."""

import numpy as np
import pytest

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask, Spec, Target
from repro.core.space import DesignSpace, Parameter


class _Task(SizingTask):
    def __init__(self):
        self.name = "m"
        self.space = DesignSpace([Parameter("x", 0, 1)])
        self.target = Target("t")
        self.specs = [Spec("a", ">", 10.0), Spec("b", "<", 4.0)]

    def simulate(self, u):  # pragma: no cover
        return {}


@pytest.fixture
def fom():
    return FigureOfMerit(_Task())


class TestWithMargin:
    def test_zero_margin_identity(self, fom):
        mv = np.array([1.0, 12.0, 3.0])
        np.testing.assert_array_equal(fom.with_margin(mv, 0.0), mv)

    def test_gt_metric_shifted_down(self, fom):
        mv = np.array([1.0, 12.0, 3.0])
        out = fom.with_margin(mv, 0.1)
        assert out[1] == pytest.approx(11.0)  # 12 - 0.1*10

    def test_lt_metric_shifted_up(self, fom):
        mv = np.array([1.0, 12.0, 3.0])
        out = fom.with_margin(mv, 0.1)
        assert out[2] == pytest.approx(3.4)  # 3 + 0.1*4

    def test_target_untouched(self, fom):
        mv = np.array([1.0, 12.0, 3.0])
        assert fom.with_margin(mv, 0.5)[0] == 1.0

    def test_marginally_feasible_becomes_infeasible(self, fom):
        mv = np.array([0.0, 10.2, 3.9])  # 2% margins
        assert fom.is_feasible(mv)
        shifted = fom.with_margin(mv, 0.05)
        assert not fom.is_feasible(shifted)

    def test_robust_design_stays_feasible(self, fom):
        mv = np.array([0.0, 20.0, 1.0])
        assert fom.is_feasible(fom.with_margin(mv, 0.05))

    def test_negative_margin_raises(self, fom):
        with pytest.raises(ValueError):
            fom.with_margin(np.zeros(3), -0.1)

    def test_original_not_mutated(self, fom):
        mv = np.array([1.0, 12.0, 3.0])
        fom.with_margin(mv, 0.1)
        np.testing.assert_array_equal(mv, [1.0, 12.0, 3.0])

    def test_batch_shift(self, fom, rng):
        batch = rng.uniform(0, 20, size=(6, 3))
        out = fom.with_margin(batch, 0.1)
        np.testing.assert_allclose(out[:, 1], batch[:, 1] - 1.0)
        np.testing.assert_allclose(out[:, 2], batch[:, 2] + 0.4)
