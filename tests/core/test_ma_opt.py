"""Integration-level tests for the MAOptimizer (Algorithms 1 & 3)."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig, VariantPreset
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere, QuadraticAmplifierToy

FAST = dict(critic_steps=25, actor_steps=12, batch_size=32, n_elite=8)


def make_opt(preset=VariantPreset.MA_OPT, seed=0, task=None, **over):
    task = task or ConstrainedSphere(d=6, seed=1)
    cfg = MAOptConfig.from_preset(preset, seed=seed, **{**FAST, **over})
    return MAOptimizer(task, cfg)


class TestInitialization:
    def test_initialize_simulates_n_init(self):
        opt = make_opt()
        opt.initialize(n_init=15)
        assert len(opt.total) == 15

    def test_initialize_with_shared_set(self, rng):
        task = ConstrainedSphere(d=6, seed=1)
        x = task.space.sample(rng, 10)
        f = task.evaluate_batch(x)
        opt = make_opt(task=task)
        opt.initialize(x_init=x, f_init=f)
        assert len(opt.total) == 10
        np.testing.assert_allclose(opt.total.designs, x)

    def test_double_initialize_raises(self):
        opt = make_opt()
        opt.initialize(n_init=5)
        with pytest.raises(RuntimeError):
            opt.initialize(n_init=5)

    def test_step_before_initialize_raises(self):
        with pytest.raises(RuntimeError):
            make_opt().step()

    def test_mismatched_init_raises(self, rng):
        task = ConstrainedSphere(d=6, seed=1)
        opt = make_opt(task=task)
        with pytest.raises(ValueError):
            opt.initialize(x_init=task.space.sample(rng, 5),
                           f_init=np.zeros((4, task.m + 1)))


class TestRounds:
    def test_optimization_round_spends_n_actors_sims(self):
        opt = make_opt()
        opt.initialize(n_init=12)
        recs = opt.step()
        assert len(recs) == 3
        assert all(r.kind == "actor" for r in recs)
        assert sorted(r.owner for r in recs) == [0, 1, 2]

    def test_budget_truncates_round(self):
        opt = make_opt()
        opt.initialize(n_init=12)
        recs = opt.step(budget=2)
        assert len(recs) == 2

    def test_dnn_opt_single_sim_per_round(self):
        opt = make_opt(VariantPreset.DNN_OPT)
        opt.initialize(n_init=12)
        assert len(opt.step()) == 1

    def test_near_sampling_fires_when_feasible(self):
        """Force feasibility and the right round phase; the step must be a
        near-sampling round with exactly one simulation."""
        opt = make_opt(t_ns=1, ns_phase=0, ns_samples=50)
        opt.initialize(n_init=30)
        if not opt._specs_met():
            pytest.skip("init set happened to be infeasible for this seed")
        recs = opt.step()
        assert len(recs) == 1
        assert recs[0].kind == "ns"

    def test_no_near_sampling_when_infeasible(self):
        task = ConstrainedSphere(d=6, seed=1, gain_min=1e9)  # unsatisfiable
        opt = make_opt(task=task, t_ns=1, ns_phase=0)
        opt.initialize(n_init=10)
        recs = opt.step()
        assert all(r.kind == "actor" for r in recs)

    def test_ma_opt2_never_near_samples(self):
        opt = make_opt(VariantPreset.MA_OPT_2, t_ns=1)
        opt.initialize(n_init=30)
        for _ in range(3):
            recs = opt.step()
            assert all(r.kind == "actor" for r in recs)


class TestRun:
    def test_budget_respected_exactly(self):
        res = make_opt().run(n_sims=20, n_init=10)
        assert res.n_sims == 20
        assert len(res.records) == 20

    def test_deterministic_given_seed(self):
        r1 = make_opt(seed=7).run(n_sims=12, n_init=8)
        r2 = make_opt(seed=7).run(n_sims=12, n_init=8)
        np.testing.assert_allclose(r1.foms, r2.foms)

    def test_different_seeds_differ(self):
        r1 = make_opt(seed=1).run(n_sims=12, n_init=8)
        r2 = make_opt(seed=2).run(n_sims=12, n_init=8)
        assert not np.allclose(r1.foms, r2.foms)

    def test_improves_over_initial_set(self):
        res = make_opt(seed=3).run(n_sims=45, n_init=20)
        assert res.best_fom < res.init_best_fom

    def test_beats_random_search_on_sphere(self, rng):
        """Seed-averaged: MA-Opt's mean best FoM beats an equal-budget
        random search (individual seeds are too noisy at this tiny scale)."""
        task = ConstrainedSphere(d=6, seed=1)
        from repro.core.fom import FigureOfMerit

        fom = FigureOfMerit(task)
        g_rand = np.mean([
            float(np.min(fom(task.evaluate_batch(task.space.sample(rng, 65)))))
            for _ in range(3)
        ])
        g_ma = np.mean([
            make_opt(task=task, seed=s).run(n_sims=45, n_init=20).best_fom
            for s in (3, 4, 5)
        ])
        assert g_ma < g_rand

    def test_default_method_names(self):
        for preset, name in [(VariantPreset.DNN_OPT, "DNN-Opt"),
                             (VariantPreset.MA_OPT_1, "MA-Opt1"),
                             (VariantPreset.MA_OPT_2, "MA-Opt2"),
                             (VariantPreset.MA_OPT, "MA-Opt")]:
            res = make_opt(preset).run(n_sims=4, n_init=6)
            assert res.method == name

    def test_records_track_feasibility(self):
        task = QuadraticAmplifierToy()
        res = make_opt(task=task, seed=5).run(n_sims=30, n_init=15)
        for r in res.records:
            assert r.feasible == task.is_feasible(r.metrics)

    def test_wall_time_recorded(self):
        res = make_opt().run(n_sims=6, n_init=6)
        assert res.wall_time_s > 0.0


class TestEliteWiring:
    def test_shared_mode_single_view(self):
        opt = make_opt(VariantPreset.MA_OPT_2)
        assert all(e is opt.global_elite for e in opt.actor_elites)

    def test_individual_mode_distinct_views(self):
        opt = make_opt(VariantPreset.MA_OPT_1)
        owners = [e.owner for e in opt.actor_elites]
        assert owners == [0, 1, 2]
