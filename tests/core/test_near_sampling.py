"""Unit tests for the near-sampling method (Alg. 2)."""

import numpy as np
import pytest

from repro.core.fom import FigureOfMerit
from repro.core.near_sampling import near_sample_candidates, near_sampling_proposal
from repro.core.networks import Critic
from repro.core.synthetic import ConstrainedSphere


class TestCandidates:
    def test_within_radius(self, rng):
        x_opt = np.full(5, 0.5)
        c = near_sample_candidates(x_opt, 0.05, 200, rng)
        assert c.shape == (200, 5)
        assert np.all(np.abs(c - x_opt) <= 0.05 + 1e-12)

    def test_clipped_to_unit_cube(self, rng):
        x_opt = np.array([0.01, 0.99])
        c = near_sample_candidates(x_opt, 0.1, 500, rng)
        assert np.all(c >= 0.0) and np.all(c <= 1.0)

    def test_per_dimension_radius(self, rng):
        x_opt = np.array([0.5, 0.5])
        c = near_sample_candidates(x_opt, np.array([0.01, 0.3]), 500, rng)
        assert np.max(np.abs(c[:, 0] - 0.5)) <= 0.01 + 1e-12
        assert np.max(np.abs(c[:, 1] - 0.5)) > 0.05

    def test_bad_params_raise(self, rng):
        with pytest.raises(ValueError):
            near_sample_candidates(np.zeros(2), 0.1, 0, rng)
        with pytest.raises(ValueError):
            near_sample_candidates(np.zeros(2), -0.1, 10, rng)


class TestProposal:
    def test_proposal_near_x_opt(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        fom = FigureOfMerit(task)
        critic = Critic(task.d, task.m + 1, hidden=(16,), seed=0)
        critic.fit_scaler(rng.normal(size=(20, task.m + 1)))
        x_opt = np.full(4, 0.5)
        p = near_sampling_proposal(critic, fom, x_opt, 0.05, 300, rng)
        assert np.all(np.abs(p - x_opt) <= 0.05 + 1e-12)

    def test_proposal_minimizes_predicted_fom(self, rng):
        """With a critic trained on the true function, the proposal should
        have a better true FoM than the average neighbour."""
        task = ConstrainedSphere(d=3, seed=1)
        fom = FigureOfMerit(task)
        critic = Critic(task.d, task.m + 1, hidden=(48, 48), lr=3e-3, seed=0)
        xs = task.space.sample(rng, 60)
        mvs = task.evaluate_batch(xs)
        critic.fit_scaler(mvs)
        # train on identity-ish pseudo-samples around the best design
        best = xs[int(np.argmin(fom(mvs)))]
        for _ in range(400):
            idx = rng.integers(0, len(xs), size=32)
            tgt = rng.integers(0, len(xs), size=32)
            inputs = np.concatenate([xs[idx], xs[tgt] - xs[idx]], axis=1)
            critic.train_step(inputs, mvs[tgt])
        p = near_sampling_proposal(critic, fom, best, 0.1, 500, rng)
        neighbours = near_sample_candidates(best, 0.1, 200, rng)
        g_p = fom(task.evaluate(p))
        g_avg = np.mean(fom(task.evaluate_batch(neighbours)))
        assert g_p < g_avg
