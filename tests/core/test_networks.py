"""Unit tests for the actor and critic network wrappers."""

import numpy as np
import pytest

from repro.core.networks import Actor, Critic, MetricScaler


class TestMetricScaler:
    def test_transform_inverse_roundtrip(self, rng):
        s = MetricScaler(4)
        data = rng.normal(5.0, 3.0, size=(50, 4))
        s.fit(data)
        scaled = s.transform(data)
        np.testing.assert_allclose(s.inverse(scaled), data, atol=1e-9)

    def test_transform_standardizes(self, rng):
        s = MetricScaler(2)
        data = rng.normal(100.0, 10.0, size=(500, 2))
        s.fit(data)
        z = s.transform(data)
        assert abs(z.mean()) < 0.05
        assert abs(z.std() - 1.0) < 0.05

    def test_constant_column_floored(self):
        s = MetricScaler(1)
        s.fit(np.full((10, 1), 7.0))
        assert s.std[0] == 1.0


class TestCritic:
    def test_predict_shapes(self, rng):
        c = Critic(d=5, n_metrics=3, hidden=(16, 16), seed=0)
        x = rng.uniform(size=(7, 5))
        dx = rng.uniform(size=(7, 5)) * 0.1
        out = c.predict(x, dx)
        assert out.shape == (7, 3)

    def test_predict_shape_mismatch_raises(self, rng):
        c = Critic(d=5, n_metrics=3, seed=0)
        with pytest.raises(ValueError):
            c.predict(rng.uniform(size=(3, 5)), rng.uniform(size=(3, 4)))

    def test_training_reduces_loss(self, rng):
        c = Critic(d=3, n_metrics=2, hidden=(32, 32), lr=3e-3, seed=0)
        # Learnable map: metrics = [sum(x+dx), product-ish]
        x = rng.uniform(size=(256, 3))
        dx = rng.uniform(-0.2, 0.2, size=(256, 3))
        nxt = x + dx
        y = np.stack([nxt.sum(axis=1), nxt[:, 0] * 2.0], axis=1)
        c.fit_scaler(y)
        inputs = np.concatenate([x, dx], axis=1)
        first = c.train_step(inputs, y)
        for _ in range(200):
            last = c.train_step(inputs, y)
        assert last < 0.3 * first

    def test_predictions_in_raw_units(self, rng):
        """After scaler fit on large-magnitude metrics, predictions come
        back in that magnitude (not z-scores)."""
        c = Critic(d=2, n_metrics=1, hidden=(8,), seed=0)
        y = rng.normal(1e6, 1e5, size=(50, 1))
        c.fit_scaler(y)
        pred = c.predict(rng.uniform(size=(5, 2)),
                         rng.uniform(size=(5, 2)))
        assert np.all(np.abs(pred) > 1e4)


class TestActor:
    def test_action_bounded_by_scale(self, rng):
        a = Actor(d=4, hidden=(16,), action_scale=0.5, seed=0)
        acts = a.act(rng.uniform(size=(20, 4)))
        assert np.all(np.abs(acts) <= 0.5)

    def test_single_input_returns_1d(self):
        a = Actor(d=4, hidden=(8,), seed=0)
        assert a.act(np.zeros(4)).shape == (4,)

    def test_different_seeds_give_different_policies(self, rng):
        x = rng.uniform(size=(5, 3))
        a1 = Actor(d=3, seed=1).act(x)
        a2 = Actor(d=3, seed=2).act(x)
        assert not np.allclose(a1, a2)

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            Actor(d=3, action_scale=0.0)
