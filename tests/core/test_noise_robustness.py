"""Optimizer robustness to simulator measurement noise."""

import numpy as np

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere, NoisyConstrainedSphere

FAST = dict(critic_steps=20, actor_steps=10, batch_size=16, n_elite=8,
            hidden=(16, 16))


class TestNoisyTask:
    def test_run_completes_under_noise(self):
        task = NoisyConstrainedSphere(d=5, seed=1, noise=0.05)
        res = MAOptimizer(task, MAOptConfig(seed=0, **FAST)).run(
            n_sims=15, n_init=12)
        assert res.n_sims == 15
        assert np.isfinite(res.best_fom)

    def test_mild_noise_degrades_gracefully(self):
        """2% metric noise should not destroy optimization quality
        relative to the clean task (seed-averaged)."""
        clean_task = ConstrainedSphere(d=5, seed=1)
        noisy_task = NoisyConstrainedSphere(d=5, seed=1, noise=0.02)
        clean, noisy = [], []
        for seed in (0, 1, 2):
            clean.append(MAOptimizer(
                clean_task, MAOptConfig(seed=seed, **FAST)).run(
                    n_sims=30, n_init=15).best_fom)
            noisy.append(MAOptimizer(
                noisy_task, MAOptConfig(seed=seed, **FAST)).run(
                    n_sims=30, n_init=15).best_fom)
        assert np.mean(noisy) < 3.0 * np.mean(clean) + 0.1

    def test_critic_scaler_handles_noise(self):
        """The metric scaler must stay finite when fed noisy batches."""
        from repro.core.fom import FigureOfMerit
        from repro.core.networks import Critic
        from repro.core.population import TotalDesignSet

        task = NoisyConstrainedSphere(d=4, seed=0, noise=0.1)
        fom = FigureOfMerit(task)
        total = TotalDesignSet(task.d, task.m + 1)
        rng = np.random.default_rng(0)
        for x in task.space.sample(rng, 20):
            mv = task.evaluate(x)
            total.add(x, mv, float(fom(mv)))
        critic = Critic(task.d, task.m + 1, hidden=(8,), seed=0)
        critic.fit_scaler(total.metrics)
        assert np.all(np.isfinite(critic.scaler.mean))
        assert np.all(critic.scaler.std > 0)
