"""Unit tests for the parallel simulation executor."""

import numpy as np
import pytest

from repro.core.parallel import SimulationExecutor
from repro.core.synthetic import ConstrainedSphere
from repro.obs import MetricsRegistry, Telemetry, Tracer


class TestSerial:
    def test_matches_direct_evaluation(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        us = task.space.sample(rng, 5)
        out = ex.evaluate_batch(us)
        np.testing.assert_allclose(out, task.evaluate_batch(us))

    def test_single_design(self):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        out = ex.evaluate_batch(np.full(4, 0.5))
        assert out.shape == (1, task.m + 1)

    def test_negative_workers_raise(self):
        with pytest.raises(ValueError):
            SimulationExecutor(ConstrainedSphere(d=2), n_workers=-1)

    def test_close_idempotent(self):
        ex = SimulationExecutor(ConstrainedSphere(d=2), n_workers=0)
        ex.close()
        ex.close()

    def test_empty_batch(self):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        for empty in ([], np.empty((0, task.d))):
            out = ex.evaluate_batch(empty)
            assert out.shape == (0, task.m + 1)
        assert ex.batch_timings == []  # nothing was simulated

    def test_context_manager_closes_pool(self):
        task = ConstrainedSphere(d=4, seed=0)
        with SimulationExecutor(task, n_workers=0) as ex:
            assert ex.evaluate_batch(np.full(4, 0.5)).shape == (1, task.m + 1)
        assert ex._pool is None


class TestTelemetry:
    def test_batch_timing_recorded(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        us = task.space.sample(rng, 5)
        ex.evaluate_batch(us, kind="actor")
        ex.evaluate_batch(us[0], kind="ns")
        assert len(ex.batch_timings) == 2
        first, second = ex.batch_timings
        assert first.n == 5 and first.kind == "actor" and not first.parallel
        assert len(first.sim_s) == 5
        assert all(dt >= 0 for dt in first.sim_s)
        assert first.wall_s >= sum(first.sim_s) * 0.5  # same clock, sane scale
        assert second.n == 1 and second.kind == "ns"

    def test_metrics_and_spans(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        reg, tracer = MetricsRegistry(), Tracer()
        ex = SimulationExecutor(task, n_workers=0,
                                telemetry=Telemetry(tracer=tracer,
                                                    metrics=reg))
        ex.evaluate_batch(task.space.sample(rng, 4), kind="actor")
        assert reg.counter_value("sims_total", kind="actor") == 4
        assert reg.histogram_stats("sim_latency_s", kind="actor")["count"] == 4
        spans = tracer.find("simulate")
        assert len(spans) == 1
        assert spans[0].attrs["n"] == 4
        assert spans[0].attrs["kind"] == "actor"


@pytest.mark.slow
class TestParallel:
    def test_parallel_matches_serial(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        us = task.space.sample(rng, 6)
        serial = SimulationExecutor(task, n_workers=0).evaluate_batch(us)
        ex = SimulationExecutor(task, n_workers=2)
        try:
            parallel = ex.evaluate_batch(us)
        finally:
            ex.close()
        np.testing.assert_allclose(parallel, serial)

    def test_parallel_metrics_match_serial(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        us = task.space.sample(rng, 6)
        reg_s = MetricsRegistry()
        SimulationExecutor(task, n_workers=0,
                           telemetry=Telemetry(metrics=reg_s)
                           ).evaluate_batch(us, kind="actor")
        reg_p = MetricsRegistry()
        ex = SimulationExecutor(task, n_workers=2,
                                telemetry=Telemetry(metrics=reg_p))
        try:
            ex.evaluate_batch(us, kind="actor")
        finally:
            ex.close()
        # identical counters and observation counts on both paths
        assert (reg_p.counter_value("sims_total", kind="actor")
                == reg_s.counter_value("sims_total", kind="actor") == 6)
        assert (reg_p.histogram_stats("sim_latency_s", kind="actor")["count"]
                == reg_s.histogram_stats("sim_latency_s",
                                         kind="actor")["count"] == 6)
        timing = ex.batch_timings[-1]
        assert timing.parallel and timing.n == 6 and len(timing.sim_s) == 6

    def test_pool_close_idempotent(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=2)
        ex.evaluate_batch(task.space.sample(rng, 4))
        ex.close()
        ex.close()
        # the pool is lazily rebuilt after close
        out = ex.evaluate_batch(task.space.sample(rng, 3))
        assert out.shape == (3, task.m + 1)
        ex.close()
