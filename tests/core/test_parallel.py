"""Unit tests for the parallel simulation executor."""

import numpy as np
import pytest

from repro.core.parallel import SimulationExecutor
from repro.core.synthetic import ConstrainedSphere


class TestSerial:
    def test_matches_direct_evaluation(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        us = task.space.sample(rng, 5)
        out = ex.evaluate_batch(us)
        np.testing.assert_allclose(out, task.evaluate_batch(us))

    def test_single_design(self):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=0)
        out = ex.evaluate_batch(np.full(4, 0.5))
        assert out.shape == (1, task.m + 1)

    def test_negative_workers_raise(self):
        with pytest.raises(ValueError):
            SimulationExecutor(ConstrainedSphere(d=2), n_workers=-1)

    def test_close_idempotent(self):
        ex = SimulationExecutor(ConstrainedSphere(d=2), n_workers=0)
        ex.close()
        ex.close()


@pytest.mark.slow
class TestParallel:
    def test_parallel_matches_serial(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        us = task.space.sample(rng, 6)
        serial = SimulationExecutor(task, n_workers=0).evaluate_batch(us)
        ex = SimulationExecutor(task, n_workers=2)
        try:
            parallel = ex.evaluate_batch(us)
        finally:
            ex.close()
        np.testing.assert_allclose(parallel, serial)
