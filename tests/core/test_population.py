"""Unit tests for TotalDesignSet and EliteSet (shared vs individual)."""

import numpy as np
import pytest

from repro.core.population import EliteSet, TotalDesignSet


def make_total(d=3, n_metrics=2):
    return TotalDesignSet(d, n_metrics)


class TestTotalDesignSet:
    def test_add_and_len(self, rng):
        total = make_total()
        for i in range(5):
            total.add(rng.uniform(size=3), rng.uniform(size=2), fom=float(i))
        assert len(total) == 5

    def test_shape_validation(self):
        total = make_total()
        with pytest.raises(ValueError):
            total.add(np.zeros(4), np.zeros(2), 0.0)
        with pytest.raises(ValueError):
            total.add(np.zeros(3), np.zeros(3), 0.0)

    def test_best_is_min_fom(self, rng):
        total = make_total()
        foms = [3.0, 1.0, 2.0]
        for g in foms:
            total.add(rng.uniform(size=3), rng.uniform(size=2), g)
        x, f, g = total.best()
        assert g == 1.0
        assert total.best_index() == 1

    def test_best_of_empty_raises(self):
        with pytest.raises(ValueError):
            make_total().best()

    def test_metric_stats_floors_std(self):
        total = make_total(n_metrics=2)
        for _ in range(3):
            total.add(np.zeros(3), np.array([5.0, 5.0]), 0.0)
        mean, std = total.metric_stats()
        np.testing.assert_allclose(mean, [5.0, 5.0])
        np.testing.assert_allclose(std, [1.0, 1.0])  # floored

    def test_designs_and_metrics_copies(self, rng):
        total = make_total()
        total.add(rng.uniform(size=3), rng.uniform(size=2), 0.0)
        d = total.designs
        d[0, 0] = 99.0
        assert total.designs[0, 0] != 99.0


class TestSharedElite:
    def test_keeps_best_n(self, rng):
        total = make_total()
        for i in range(10):
            total.add(rng.uniform(size=3), rng.uniform(size=2), fom=float(i))
        elite = EliteSet(total, n_es=3)
        np.testing.assert_array_equal(elite.indices(), [0, 1, 2])

    def test_updates_as_designs_arrive(self, rng):
        total = make_total()
        elite = EliteSet(total, n_es=2)
        total.add(rng.uniform(size=3), rng.uniform(size=2), fom=5.0)
        total.add(rng.uniform(size=3), rng.uniform(size=2), fom=4.0)
        assert set(elite.indices()) == {0, 1}
        total.add(rng.uniform(size=3), rng.uniform(size=2), fom=1.0)
        assert 2 in elite.indices()
        assert 0 not in elite.indices()

    def test_best(self, rng):
        total = make_total()
        x0 = rng.uniform(size=3)
        total.add(x0, rng.uniform(size=2), fom=0.5)
        total.add(rng.uniform(size=3), rng.uniform(size=2), fom=2.0)
        elite = EliteSet(total, n_es=2)
        x, g = elite.best()
        np.testing.assert_allclose(x, x0)
        assert g == 0.5

    def test_bounds_envelope(self):
        total = make_total(d=2)
        total.add(np.array([0.1, 0.9]), np.zeros(2), 1.0)
        total.add(np.array([0.5, 0.2]), np.zeros(2), 2.0)
        elite = EliteSet(total, n_es=2)
        lb, ub = elite.bounds()
        np.testing.assert_allclose(lb, [0.1, 0.2])
        np.testing.assert_allclose(ub, [0.5, 0.9])

    def test_bad_size_raises(self):
        with pytest.raises(ValueError):
            EliteSet(make_total(), n_es=0)

    def test_empty_elite_bounds_raise(self):
        with pytest.raises(ValueError):
            EliteSet(make_total(), n_es=2).bounds()


class TestIndividualElite:
    def test_sees_only_own_and_init(self, rng):
        """Fig. 2a: actor i's elite set ranks init designs (owner None)
        plus its own simulations only."""
        total = make_total()
        total.add(rng.uniform(size=3), rng.uniform(size=2), 5.0, owner=None)
        total.add(rng.uniform(size=3), rng.uniform(size=2), 1.0, owner=0)
        total.add(rng.uniform(size=3), rng.uniform(size=2), 0.5, owner=1)
        e0 = EliteSet(total, n_es=2, owner=0)
        e1 = EliteSet(total, n_es=2, owner=1)
        assert set(e0.indices()) == {0, 1}
        assert set(e1.indices()) == {0, 2}

    def test_update_rate_asymmetry(self, rng):
        """The paper's argument for sharing: a shared set can absorb
        N_act new elites per round, an individual one at most 1."""
        total = make_total()
        # round: 3 actors each simulate one strictly-better design
        for actor in range(3):
            total.add(rng.uniform(size=3), rng.uniform(size=2),
                      fom=-1.0 - actor, owner=actor)
        shared = EliteSet(total, n_es=3, owner=None)
        indiv = EliteSet(total, n_es=3, owner=0)
        assert len(shared.indices()) == 3       # all three absorbed
        assert len(indiv.indices()) == 1        # only its own
