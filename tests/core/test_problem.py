"""Unit tests for Spec / Target / SizingTask."""

import numpy as np
import pytest

from repro.core.problem import Spec, Target
from repro.core.synthetic import ConstrainedSphere


class TestSpec:
    def test_gt_violation_sign(self):
        s = Spec("gain", ">", 60.0)
        assert s.violation(70.0) < 0
        assert s.violation(50.0) > 0
        assert s.satisfied(60.0)

    def test_lt_violation_sign(self):
        s = Spec("noise", "<", 30.0)
        assert s.violation(20.0) < 0
        assert s.violation(40.0) > 0

    def test_violation_normalized_by_bound(self):
        s = Spec("gain", ">", 100.0)
        assert s.violation(50.0) == pytest.approx(0.5)

    def test_negative_bound_normalization(self):
        s = Spec("offset", "<", -10.0)
        assert s.violation(-5.0) == pytest.approx(0.5)
        assert s.satisfied(-20.0)

    def test_bad_kind_raises(self):
        with pytest.raises(ValueError):
            Spec("x", ">=", 1.0)

    def test_zero_bound_raises(self):
        with pytest.raises(ValueError):
            Spec("x", ">", 0.0)

    def test_default_fail_value_violates(self):
        for kind in (">", "<"):
            for bound in (5.0, -5.0):
                s = Spec("x", kind, bound)
                assert not s.satisfied(s.default_fail_value())

    def test_explicit_fail_value_used(self):
        s = Spec("x", ">", 1.0, fail_value=-99.0)
        assert s.default_fail_value() == -99.0


class TestTarget:
    def test_bad_weight_raises(self):
        with pytest.raises(ValueError):
            Target("power", weight=0.0)


class TestSizingTaskEvaluate:
    def test_metric_vector_order(self, sphere_task):
        u = np.full(sphere_task.d, 0.5)
        mv = sphere_task.evaluate(u)
        assert mv.shape == (sphere_task.m + 1,)
        metrics = sphere_task.simulate(u)
        assert mv[0] == pytest.approx(metrics["loss"])
        assert mv[1] == pytest.approx(metrics["gain"])

    def test_evaluate_clips_inputs(self, sphere_task):
        a = sphere_task.evaluate(np.full(sphere_task.d, 2.0))
        b = sphere_task.evaluate(np.full(sphere_task.d, 1.0))
        np.testing.assert_allclose(a, b)

    def test_exception_in_simulate_maps_to_fail_values(self, sphere_task):
        class Broken(type(sphere_task)):
            def simulate(self, u):
                raise RuntimeError("sim crashed")

        broken = Broken(d=sphere_task.d)
        mv = broken.evaluate(np.full(broken.d, 0.5))
        assert mv[0] == broken.target.fail_value
        assert not broken.is_feasible(mv)

    def test_missing_metric_maps_to_fail_value(self, sphere_task):
        class Partial(type(sphere_task)):
            def simulate(self, u):
                out = super().simulate(u)
                del out["gain"]
                return out

        partial = Partial(d=sphere_task.d)
        mv = partial.evaluate(np.full(partial.d, 0.5))
        assert mv[1] == partial.specs[0].default_fail_value()

    def test_nan_metric_maps_to_fail_value(self, sphere_task):
        class Nan(type(sphere_task)):
            def simulate(self, u):
                out = super().simulate(u)
                out["power"] = float("nan")
                return out

        nan_task = Nan(d=sphere_task.d)
        mv = nan_task.evaluate(np.full(nan_task.d, 0.5))
        assert np.isfinite(mv).all()

    def test_evaluate_batch_shape(self, sphere_task, rng):
        us = sphere_task.space.sample(rng, 7)
        fv = sphere_task.evaluate_batch(us)
        assert fv.shape == (7, sphere_task.m + 1)

    def test_is_feasible_consistent_with_specs(self, sphere_task, rng):
        us = sphere_task.space.sample(rng, 20)
        for u in us:
            mv = sphere_task.evaluate(u)
            manual = all(s.satisfied(mv[i + 1])
                         for i, s in enumerate(sphere_task.specs))
            assert sphere_task.is_feasible(mv) == manual

    def test_describe_mentions_target_and_specs(self, sphere_task):
        text = sphere_task.describe()
        assert "loss" in text
        assert "gain" in text
