"""Unit tests for pseudo-sample generation (Eq. 3)."""

import numpy as np
import pytest

from repro.core.population import TotalDesignSet
from repro.core.pseudo import all_pseudo_samples, pseudo_sample_batch


@pytest.fixture
def total(rng):
    t = TotalDesignSet(d=4, n_metrics=3)
    for _ in range(6):
        t.add(rng.uniform(size=4), rng.uniform(size=3), fom=rng.uniform())
    return t


class TestBatch:
    def test_shapes(self, total, rng):
        x, y = pseudo_sample_batch(total, 32, rng)
        assert x.shape == (32, 8)
        assert y.shape == (32, 3)

    def test_eq3_consistency(self, total, rng):
        """Every pseudo-sample must satisfy x_i + dx = some design x_j with
        target f(x_j)."""
        x, y = pseudo_sample_batch(total, 64, rng)
        designs = total.designs
        metrics = total.metrics
        for row, target in zip(x, y):
            xi, dx = row[:4], row[4:]
            xj = xi + dx
            # xj must match a stored design exactly
            dists = np.linalg.norm(designs - xj, axis=1)
            j = int(np.argmin(dists))
            assert dists[j] < 1e-12
            np.testing.assert_allclose(target, metrics[j])

    def test_identity_fraction(self, total, rng):
        x, y = pseudo_sample_batch(total, 50, rng,
                                   include_identity_fraction=0.2)
        dx = x[:, 4:]
        n_zero = int(np.sum(np.all(np.abs(dx) < 1e-15, axis=1)))
        assert n_zero >= 10  # at least the forced share

    def test_empty_total_raises(self, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(TotalDesignSet(2, 2), 8, rng)

    def test_bad_batch_raises(self, total, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(total, 0, rng)

    def test_bad_fraction_raises(self, total, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(total, 8, rng, include_identity_fraction=2.0)


class TestAllPairs:
    def test_n_squared_pairs(self, total):
        x, y = all_pseudo_samples(total)
        assert x.shape == (36, 8)
        assert y.shape == (36, 3)

    def test_subsampling_cap(self, total, rng):
        x, y = all_pseudo_samples(total, max_pairs=10, rng=rng)
        assert x.shape == (10, 8)
        assert y.shape == (10, 3)

    def test_subsampling_needs_rng(self, total):
        with pytest.raises(ValueError, match="rng"):
            all_pseudo_samples(total, max_pairs=10)

    def test_cap_at_or_above_n_squared_needs_no_rng(self, total):
        """No subsampling happens, so the ambient-rng guard must not fire."""
        x, _ = all_pseudo_samples(total, max_pairs=36)
        assert x.shape == (36, 8)
        x, _ = all_pseudo_samples(total, max_pairs=1000)
        assert x.shape == (36, 8)

    def test_subsampled_pairs_distinct(self, total):
        """Subsampling is without replacement: no (i, j) pair twice."""
        rng = np.random.default_rng(3)
        x, _ = all_pseudo_samples(total, max_pairs=30, rng=rng)
        rows = {tuple(np.round(row, 12)) for row in x}
        assert len(rows) == 30

    def test_subsampling_deterministic(self, total):
        a, ya = all_pseudo_samples(total, max_pairs=12,
                                   rng=np.random.default_rng(11))
        b, yb = all_pseudo_samples(total, max_pairs=12,
                                   rng=np.random.default_rng(11))
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_large_fraction_subsample(self, total):
        """2k >= n^2 takes the permutation path; still exact and distinct."""
        rng = np.random.default_rng(5)
        x, _ = all_pseudo_samples(total, max_pairs=35, rng=rng)
        assert x.shape == (35, 8)
        rows = {tuple(np.round(row, 12)) for row in x}
        assert len(rows) == 35

    def test_bad_max_pairs_raises(self, total):
        with pytest.raises(ValueError, match="max_pairs"):
            all_pseudo_samples(total, max_pairs=0,
                               rng=np.random.default_rng(0))

    def test_identity_pairs_present(self, total):
        """The full pair set includes i==j 'no action' samples."""
        x, _ = all_pseudo_samples(total)
        dx = x[:, 4:]
        n_zero = int(np.sum(np.all(np.abs(dx) < 1e-15, axis=1)))
        assert n_zero == 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            all_pseudo_samples(TotalDesignSet(2, 2))
