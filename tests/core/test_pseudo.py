"""Unit tests for pseudo-sample generation (Eq. 3)."""

import numpy as np
import pytest

from repro.core.population import TotalDesignSet
from repro.core.pseudo import all_pseudo_samples, pseudo_sample_batch


@pytest.fixture
def total(rng):
    t = TotalDesignSet(d=4, n_metrics=3)
    for _ in range(6):
        t.add(rng.uniform(size=4), rng.uniform(size=3), fom=rng.uniform())
    return t


class TestBatch:
    def test_shapes(self, total, rng):
        x, y = pseudo_sample_batch(total, 32, rng)
        assert x.shape == (32, 8)
        assert y.shape == (32, 3)

    def test_eq3_consistency(self, total, rng):
        """Every pseudo-sample must satisfy x_i + dx = some design x_j with
        target f(x_j)."""
        x, y = pseudo_sample_batch(total, 64, rng)
        designs = total.designs
        metrics = total.metrics
        for row, target in zip(x, y):
            xi, dx = row[:4], row[4:]
            xj = xi + dx
            # xj must match a stored design exactly
            dists = np.linalg.norm(designs - xj, axis=1)
            j = int(np.argmin(dists))
            assert dists[j] < 1e-12
            np.testing.assert_allclose(target, metrics[j])

    def test_identity_fraction(self, total, rng):
        x, y = pseudo_sample_batch(total, 50, rng,
                                   include_identity_fraction=0.2)
        dx = x[:, 4:]
        n_zero = int(np.sum(np.all(np.abs(dx) < 1e-15, axis=1)))
        assert n_zero >= 10  # at least the forced share

    def test_empty_total_raises(self, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(TotalDesignSet(2, 2), 8, rng)

    def test_bad_batch_raises(self, total, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(total, 0, rng)

    def test_bad_fraction_raises(self, total, rng):
        with pytest.raises(ValueError):
            pseudo_sample_batch(total, 8, rng, include_identity_fraction=2.0)


class TestAllPairs:
    def test_n_squared_pairs(self, total):
        x, y = all_pseudo_samples(total)
        assert x.shape == (36, 8)
        assert y.shape == (36, 3)

    def test_subsampling_cap(self, total, rng):
        x, y = all_pseudo_samples(total, max_pairs=10, rng=rng)
        assert x.shape == (10, 8)

    def test_identity_pairs_present(self, total):
        """The full pair set includes i==j 'no action' samples."""
        x, _ = all_pseudo_samples(total)
        dx = x[:, 4:]
        n_zero = int(np.sum(np.all(np.abs(dx) < 1e-15, axis=1)))
        assert n_zero == 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            all_pseudo_samples(TotalDesignSet(2, 2))
