"""Unit tests for OptimizationResult."""

import numpy as np
import pytest

from repro.core.result import EvaluationRecord, OptimizationResult


def rec(i, fom, feasible=False, target=1.0, kind="actor"):
    return EvaluationRecord(
        index=i, x=np.zeros(2), metrics=np.array([target, 0.0]),
        fom=fom, kind=kind, feasible=feasible,
    )


class TestTrace:
    def test_trace_starts_at_init_best(self):
        res = OptimizationResult("t", "m", records=[rec(0, 5.0)],
                                 init_best_fom=2.0)
        trace = res.best_fom_trace()
        assert trace[0] == 2.0
        assert trace[1] == 2.0  # 5.0 doesn't improve

    def test_trace_monotone_nonincreasing(self):
        foms = [5.0, 3.0, 4.0, 1.0, 2.0]
        res = OptimizationResult("t", "m",
                                 records=[rec(i, f) for i, f in enumerate(foms)],
                                 init_best_fom=4.5)
        trace = res.best_fom_trace()
        assert all(b <= a for a, b in zip(trace, trace[1:]))
        assert trace[-1] == 1.0

    def test_best_fom_includes_init(self):
        res = OptimizationResult("t", "m", records=[rec(0, 5.0)],
                                 init_best_fom=0.5)
        assert res.best_fom == 0.5


class TestFeasibility:
    def test_success_flag(self):
        res = OptimizationResult("t", "m", records=[rec(0, 1.0)],
                                 init_best_fom=9.0)
        assert not res.success
        res.records.append(rec(1, 0.5, feasible=True))
        assert res.success

    def test_best_feasible_minimizes_target(self):
        res = OptimizationResult("t", "m", records=[
            rec(0, 1.0, feasible=True, target=3.0),
            rec(1, 2.0, feasible=True, target=1.0),
            rec(2, 0.1, feasible=False, target=0.1),
        ], init_best_fom=9.0)
        best = res.best_feasible()
        assert best.metrics[0] == 1.0

    def test_best_feasible_none_when_infeasible(self):
        res = OptimizationResult("t", "m", records=[rec(0, 1.0)],
                                 init_best_fom=9.0)
        assert res.best_feasible() is None

    def test_best_record(self):
        res = OptimizationResult("t", "m", records=[
            rec(0, 1.0), rec(1, 0.3), rec(2, 0.7)], init_best_fom=9.0)
        assert res.best_record().fom == 0.3

    def test_empty_result(self):
        res = OptimizationResult("t", "m", init_best_fom=3.0)
        assert res.best_record() is None
        assert res.best_fom == 3.0
        assert res.n_sims == 0


class TestSummary:
    def test_summary_fields(self):
        res = OptimizationResult("ota", "MA-Opt", records=[
            rec(0, 0.4, feasible=True, target=1e-3)], init_best_fom=2.0,
            wall_time_s=12.0)
        s = res.summary()
        assert s["task"] == "ota"
        assert s["method"] == "MA-Opt"
        assert s["success"] is True
        assert s["best_feasible_target"] == pytest.approx(1e-3)
        assert s["wall_time_s"] == 12.0
