"""Tests for the log-aware metric scaler."""

import numpy as np
import pytest

from repro.core.networks import MetricScaler


@pytest.fixture
def scaler(rng):
    s = MetricScaler(3, log_mask=np.array([False, True, True]),
                     log_floors=np.array([1e-15, 1e3, 1e-12]))
    data = np.column_stack([
        rng.normal(60.0, 10.0, size=100),          # linear metric (dB)
        10 ** rng.uniform(4, 9, size=100),          # frequency-like
        10 ** rng.uniform(-11, -7, size=100),       # noise-like
    ])
    s.fit(data)
    return s, data


class TestRoundtrip:
    def test_inverse_of_transform_is_identity(self, scaler):
        s, data = scaler
        np.testing.assert_allclose(s.inverse(s.transform(data)), data,
                                   rtol=1e-9)

    def test_transform_standardizes_log_columns(self, scaler):
        s, data = scaler
        z = s.transform(data)
        assert abs(z.mean(axis=0)).max() < 1e-9
        np.testing.assert_allclose(z.std(axis=0), 1.0, rtol=1e-6)

    def test_floor_clamps_nonpositive_values(self):
        s = MetricScaler(1, log_mask=np.array([True]),
                         log_floors=np.array([1e3]))
        s.fit(np.array([[1e6], [1e7]]))
        z = s.transform(np.array([[0.0]]))
        z_floor = s.transform(np.array([[1e3]]))
        np.testing.assert_allclose(z, z_floor)

    def test_inverse_never_overflows(self):
        s = MetricScaler(1, log_mask=np.array([True]))
        s.fit(np.array([[1.0], [10.0]]))
        out = s.inverse(np.array([[1e4]]))  # absurd network output
        assert np.isfinite(out).all()


class TestJacobian:
    def test_linear_column_jacobian_is_std(self, scaler):
        s, data = scaler
        jac = s.jacobian_from_raw(data)
        np.testing.assert_allclose(jac[:, 0], s.std[0])

    def test_log_column_jacobian_matches_finite_diff(self, scaler):
        s, data = scaler
        raw = data[:5]
        z = s.transform(raw)
        jac = s.jacobian_from_raw(raw)
        eps = 1e-6
        for col in (1, 2):
            z_hi = z.copy()
            z_hi[:, col] += eps
            fd = (s.inverse(z_hi)[:, col] - raw[:, col]) / eps
            np.testing.assert_allclose(jac[:, col], fd, rtol=1e-3)

    def test_default_mask_all_linear(self, rng):
        s = MetricScaler(2)
        data = rng.normal(size=(50, 2))
        s.fit(data)
        jac = s.jacobian_from_raw(data)
        np.testing.assert_allclose(jac, np.broadcast_to(s.std, jac.shape))

    def test_mask_length_validated(self):
        with pytest.raises(ValueError):
            MetricScaler(3, log_mask=np.array([True]))


class TestTaskMasks:
    def test_circuit_tasks_expose_masks(self):
        from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA

        for cls in (TwoStageOTA, ThreeStageTIA, LDORegulator):
            task = cls()
            mask = task.metric_log_mask
            floors = task.metric_log_floors
            assert mask.shape == (task.m + 1,)
            assert floors.shape == (task.m + 1,)
            assert mask[0]  # power / qc always log-scaled

    def test_ota_log_selection(self):
        from repro.circuits import TwoStageOTA

        task = TwoStageOTA()
        flags = dict(zip(task.metric_names, task.metric_log_mask))
        assert flags["ugf"] and flags["settling"] and flags["noise"]
        assert not flags["dc_gain"] and not flags["pm"]
