"""Tests for result save/load round-tripping."""

import numpy as np
import pytest

from repro.core.serialize import load_result, save_result


@pytest.fixture
def result():
    from repro.core.config import MAOptConfig
    from repro.core.ma_opt import MAOptimizer
    from repro.core.synthetic import ConstrainedSphere

    task = ConstrainedSphere(d=4, seed=0)
    cfg = MAOptConfig(seed=0, critic_steps=10, actor_steps=5, batch_size=8,
                      n_elite=5, hidden=(8, 8))
    return MAOptimizer(task, cfg).run(n_sims=6, n_init=8)


class TestRoundTrip:
    def test_all_fields_survive(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.task_name == result.task_name
        assert loaded.method == result.method
        assert loaded.init_best_fom == pytest.approx(result.init_best_fom)
        assert loaded.wall_time_s == pytest.approx(result.wall_time_s)
        assert loaded.n_sims == result.n_sims
        for a, b in zip(loaded.records, result.records):
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.metrics, b.metrics)
            assert a.fom == pytest.approx(b.fom)
            assert a.kind == b.kind
            assert a.owner == b.owner
            assert a.feasible == b.feasible
            assert a.t_wall == pytest.approx(b.t_wall)

    def test_traces_identical(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        loaded = load_result(path)
        np.testing.assert_allclose(loaded.best_fom_trace(),
                                   result.best_fom_trace())

    def test_suffix_appended(self, result, tmp_path):
        path = tmp_path / "run"
        save_result(result, path)
        assert (tmp_path / "run.npz").exists()

    def test_empty_result(self, tmp_path):
        from repro.core.result import OptimizationResult

        empty = OptimizationResult("t", "m", init_best_fom=1.0)
        save_result(empty, tmp_path / "e.npz")
        loaded = load_result(tmp_path / "e.npz")
        assert loaded.n_sims == 0
        assert loaded.best_fom == 1.0

    def test_version_check(self, result, tmp_path):
        import json

        path = tmp_path / "run.npz"
        save_result(result, path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(str(arrays["header"]))
        header["version"] = 99
        arrays["header"] = np.array(json.dumps(header))
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_result(path)


class TestComparisonArchive:
    def test_save_load_comparison(self, result, tmp_path):
        from repro.core.serialize import load_comparison, save_comparison

        results = {"MA-Opt": [result], "Random": [result, result]}
        written = save_comparison(results, tmp_path / "runs")
        assert len(written) == 3
        loaded = load_comparison(tmp_path / "runs")
        assert set(loaded) == {"MA-Opt", "Random"}
        assert len(loaded["Random"]) == 2
        import numpy as np

        np.testing.assert_allclose(loaded["MA-Opt"][0].foms, result.foms)

    def test_comparison_curves_survive(self, result, tmp_path):
        from repro.core.serialize import load_comparison, save_comparison
        from repro.experiments import fom_curves

        save_comparison({"m": [result]}, tmp_path / "c")
        curves = fom_curves(load_comparison(tmp_path / "c"))
        assert "m" in curves


class TestPickleFreeFormat:
    def test_archives_load_without_pickle(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        # a v2 archive must be fully readable with pickle disabled
        with np.load(path, allow_pickle=False) as data:
            for key in data.files:
                assert data[key].dtype != object
                data[key]  # force decompression of every array

    def test_version_1_archives_still_load(self, result, tmp_path):
        import json

        path = tmp_path / "run.npz"
        save_result(result, path)
        # rewrite as a faithful v1 archive: object-dtype kinds + version 1
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(str(arrays["header"]))
        header["version"] = 1
        arrays["header"] = np.array(json.dumps(header))
        arrays["kinds"] = np.array([str(k) for k in arrays["kinds"]],
                                   dtype=object)
        np.savez_compressed(path, **arrays)
        loaded = load_result(path)
        assert [r.kind for r in loaded.records] == [r.kind
                                                    for r in result.records]
        np.testing.assert_allclose(loaded.best_fom_trace(),
                                   result.best_fom_trace())

    def test_empty_result_round_trips(self, tmp_path):
        from repro.core.result import OptimizationResult

        empty = OptimizationResult(task_name="t", method="m", records=[],
                                   init_best_fom=1.0, wall_time_s=0.0)
        path = tmp_path / "empty.npz"
        save_result(empty, path)
        loaded = load_result(path)
        assert loaded.records == [] and loaded.method == "m"
