"""Unit tests for DesignSpace / Parameter."""

import numpy as np
import pytest

from repro.core.space import DesignSpace, Parameter


class TestParameter:
    def test_denormalize_endpoints(self):
        p = Parameter("x", 2.0, 10.0)
        assert p.denormalize(0.0) == 2.0
        assert p.denormalize(1.0) == 10.0

    def test_normalize_roundtrip(self):
        p = Parameter("x", -5.0, 5.0)
        for v in [-5.0, 0.0, 2.5, 5.0]:
            assert p.denormalize(p.normalize(v)) == pytest.approx(v)

    def test_integer_rounds(self):
        p = Parameter("n", 1, 20, integer=True)
        assert p.denormalize(0.0) == 1
        assert p.denormalize(1.0) == 20
        assert p.denormalize(0.5) == pytest.approx(round(1 + 0.5 * 19))
        assert float(p.denormalize(0.49)).is_integer()

    def test_integer_never_escapes_bounds(self):
        p = Parameter("n", 1, 20, integer=True)
        assert 1 <= p.denormalize(1e-9) <= 20
        assert 1 <= p.denormalize(1 - 1e-9) <= 20

    def test_bad_bounds_raise(self):
        with pytest.raises(ValueError):
            Parameter("x", 1.0, 1.0)

    def test_empty_name_raises(self):
        with pytest.raises(ValueError):
            Parameter("", 0.0, 1.0)


class TestDesignSpace:
    def _space(self):
        return DesignSpace([
            Parameter("w", 0.22, 150.0, unit="um"),
            Parameter("r", 0.1, 100.0, unit="kOhm"),
            Parameter("n", 1, 20, integer=True),
        ])

    def test_dimensionality(self):
        assert self._space().d == 3

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            DesignSpace([Parameter("a", 0, 1), Parameter("a", 0, 1)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_sample_in_unit_cube(self, rng):
        u = self._space().sample(rng, 50)
        assert u.shape == (50, 3)
        assert np.all(u >= 0.0) and np.all(u <= 1.0)

    def test_sample_bad_n_raises(self, rng):
        with pytest.raises(ValueError):
            self._space().sample(rng, 0)

    def test_denormalize_dict(self):
        vals = self._space().denormalize(np.array([0.0, 1.0, 0.0]))
        assert vals == {"w": 0.22, "r": 100.0, "n": 1}

    def test_denormalize_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            self._space().denormalize(np.zeros(5))

    def test_denormalize_array_matches_scalar(self, rng):
        space = self._space()
        u = space.sample(rng, 10)
        arr = space.denormalize_array(u)
        for k in range(10):
            d = space.denormalize(u[k])
            np.testing.assert_allclose(arr[k], [d["w"], d["r"], d["n"]])

    def test_normalize_missing_key_raises(self):
        with pytest.raises(KeyError):
            self._space().normalize({"w": 1.0})

    def test_normalize_roundtrip(self, rng):
        space = self._space()
        u = space.sample(rng, 1)[0]
        # integer dim quantizes, so only check the real dims roundtrip
        vals = space.denormalize(u)
        u2 = space.normalize(vals)
        np.testing.assert_allclose(u2[:2], u[:2], atol=1e-12)

    def test_clip(self):
        space = self._space()
        clipped = space.clip(np.array([-0.5, 0.5, 1.5]))
        np.testing.assert_allclose(clipped, [0.0, 0.5, 1.0])

    def test_getitem(self):
        assert self._space()["r"].unit == "kOhm"

    def test_table_rows(self):
        rows = self._space().table()
        assert len(rows) == 3
        assert rows[2] == ("n", "integer", "[1, 20]")

    def test_iteration_order(self):
        names = [p.name for p in self._space()]
        assert names == ["w", "r", "n"]
