"""Unit tests for the synthetic tasks."""

import numpy as np
import pytest

from repro.core.fom import FigureOfMerit
from repro.core.synthetic import (
    ConstrainedSphere,
    NoisyConstrainedSphere,
    QuadraticAmplifierToy,
)


class TestConstrainedSphere:
    def test_optimum_at_anchor(self):
        task = ConstrainedSphere(d=5, seed=0)
        assert task.simulate(task._a)["loss"] == pytest.approx(0.0)

    def test_metrics_present(self):
        task = ConstrainedSphere(d=5, seed=0)
        m = task.simulate(np.full(5, 0.5))
        assert set(m) == {"loss", "gain", "power"}

    def test_feasible_region_nonempty(self, rng):
        task = ConstrainedSphere(d=5, seed=0)
        fv = task.evaluate_batch(task.space.sample(rng, 300))
        assert any(task.is_feasible(f) for f in fv)

    def test_infeasible_region_nonempty(self, rng):
        task = ConstrainedSphere(d=5, seed=0)
        fv = task.evaluate_batch(task.space.sample(rng, 300))
        assert not all(task.is_feasible(f) for f in fv)

    def test_deterministic(self):
        task = ConstrainedSphere(d=5, seed=0)
        u = np.full(5, 0.3)
        np.testing.assert_allclose(task.evaluate(u), task.evaluate(u))

    def test_picklable(self):
        import pickle

        task = ConstrainedSphere(d=5, seed=0)
        clone = pickle.loads(pickle.dumps(task))
        u = np.full(5, 0.4)
        np.testing.assert_allclose(task.evaluate(u), clone.evaluate(u))


class TestToyAmp:
    def test_tradeoff_shape(self):
        task = QuadraticAmplifierToy()
        # max gain at w=1, i=0; max bw needs i>0
        hi_gain = task.simulate(np.array([1.0, 0.0]))
        hi_bw = task.simulate(np.array([1.0, 1.0]))
        assert hi_gain["gain"] > hi_bw["gain"]
        assert hi_bw["bw"] > hi_gain["bw"]

    def test_power_equals_current(self):
        task = QuadraticAmplifierToy()
        assert task.simulate(np.array([0.3, 0.7]))["power"] == pytest.approx(0.7)

    def test_feasible_exists(self):
        task = QuadraticAmplifierToy()
        mv = task.evaluate(np.array([0.9, 0.45]))
        assert task.is_feasible(mv)


class TestNoisySphere:
    def test_noise_perturbs_metrics(self):
        task = NoisyConstrainedSphere(d=4, seed=0, noise=0.05)
        u = np.full(4, 0.5)
        a = task.evaluate(u)
        b = task.evaluate(u)
        assert not np.allclose(a, b)

    def test_noise_scale_bounded(self):
        task = NoisyConstrainedSphere(d=4, seed=0, noise=0.01)
        clean = ConstrainedSphere(d=4, seed=0)
        u = np.full(4, 0.5)
        ratios = [task.evaluate(u) / clean.evaluate(u) for _ in range(20)]
        assert np.max(np.abs(np.array(ratios) - 1.0)) < 0.1
