"""Unit tests for critic/actor training (Eqs. 4-6)."""

import numpy as np
import pytest

from repro.core.fom import FigureOfMerit
from repro.core.networks import Actor, Critic
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.synthetic import ConstrainedSphere
from repro.core.training import (
    boundary_violation,
    propose_design,
    train_actor,
    train_critic,
)


@pytest.fixture
def setup(rng):
    task = ConstrainedSphere(d=4, seed=0)
    fom = FigureOfMerit(task)
    total = TotalDesignSet(task.d, task.m + 1)
    xs = task.space.sample(rng, 40)
    for x in xs:
        mv = task.evaluate(x)
        total.add(x, mv, float(fom(mv)))
    critic = Critic(task.d, task.m + 1, hidden=(32, 32), seed=1)
    actor = Actor(task.d, hidden=(32, 32), seed=2, action_scale=1.0)
    elite = EliteSet(total, n_es=8)
    return task, fom, total, critic, actor, elite


class TestBoundaryViolation:
    def test_inside_box_zero(self):
        x = np.array([[0.5, 0.5]])
        a = np.array([[0.0, 0.0]])
        viol, dviol = boundary_violation(x, a, np.array([0.0, 0.0]),
                                         np.array([1.0, 1.0]))
        np.testing.assert_allclose(viol, 0.0)
        np.testing.assert_allclose(dviol, 0.0)

    def test_below_lower_bound(self):
        x = np.array([[0.5]])
        a = np.array([[-0.7]])
        viol, dviol = boundary_violation(x, a, np.array([0.0]),
                                         np.array([1.0]))
        assert viol[0, 0] == pytest.approx(0.2)
        assert dviol[0, 0] == -1.0

    def test_above_upper_bound(self):
        x = np.array([[0.5]])
        a = np.array([[0.9]])
        viol, dviol = boundary_violation(x, a, np.array([0.0]),
                                         np.array([1.0]))
        assert viol[0, 0] == pytest.approx(0.4)
        assert dviol[0, 0] == 1.0

    def test_eq6_definition(self, rng):
        """viol = max(0, lb - (x+a)) + max(0, (x+a) - ub), elementwise."""
        x = rng.uniform(-1, 2, size=(6, 3))
        a = rng.uniform(-1, 1, size=(6, 3))
        lb = np.full(3, 0.2)
        ub = np.full(3, 0.8)
        viol, _ = boundary_violation(x, a, lb, ub)
        nxt = x + a
        expected = np.maximum(0, lb - nxt) + np.maximum(0, nxt - ub)
        np.testing.assert_allclose(viol, expected)


class TestTrainCritic:
    def test_loss_decreases(self, setup, rng):
        _, _, total, critic, _, _ = setup
        first = train_critic(critic, total, steps=5, batch_size=32, rng=rng)
        last = train_critic(critic, total, steps=200, batch_size=32, rng=rng)
        assert last < first

    def test_critic_learns_simulator(self, setup, rng):
        """After training, critic predictions at known pseudo-samples
        correlate strongly with true metrics."""
        task, _, total, critic, _, _ = setup
        train_critic(critic, total, steps=400, batch_size=64, rng=rng)
        designs = total.designs
        metrics = total.metrics
        preds = critic.predict(designs[:1].repeat(len(designs), axis=0),
                               designs - designs[:1])
        corr = np.corrcoef(preds[:, 0], metrics[:, 0])[0, 1]
        assert corr > 0.8

    def test_bad_steps_raise(self, setup, rng):
        _, _, total, critic, _, _ = setup
        with pytest.raises(ValueError):
            train_critic(critic, total, steps=0, batch_size=8, rng=rng)


class TestTrainActor:
    def test_actor_loss_finite_and_policy_changes(self, setup, rng):
        task, fom, total, critic, actor, elite = setup
        train_critic(critic, total, steps=100, batch_size=32, rng=rng)
        x_probe = total.designs[:5]
        before = actor.act(x_probe)
        loss = train_actor(actor, critic, fom, total, elite, steps=50,
                           batch_size=16, lambda_viol=10.0, rng=rng)
        after = actor.act(x_probe)
        assert np.isfinite(loss)
        assert not np.allclose(before, after)

    def test_actor_improves_predicted_fom(self, setup, rng):
        """Training should reduce the critic-predicted FoM of proposed
        successors relative to the untrained policy."""
        task, fom, total, critic, actor, elite = setup
        train_critic(critic, total, steps=300, batch_size=64, rng=rng)
        states = elite.designs()

        def predicted_g(act):
            return float(np.mean(fom(critic.predict(states, act.act(states)))))

        g_before = predicted_g(actor)
        train_actor(actor, critic, fom, total, elite, steps=150,
                    batch_size=32, lambda_viol=10.0, rng=rng)
        g_after = predicted_g(actor)
        assert g_after < g_before

    def test_violation_penalty_restrains_actions(self, setup, rng):
        """With a huge lambda, trained actions keep x+a near the elite box."""
        task, fom, total, critic, actor, elite = setup
        train_critic(critic, total, steps=100, batch_size=32, rng=rng)
        train_actor(actor, critic, fom, total, elite, steps=200,
                    batch_size=32, lambda_viol=100.0, rng=rng)
        lb, ub = elite.bounds()
        states = total.designs
        nxt = states + actor.act(states)
        viol = np.maximum(0, lb - nxt) + np.maximum(0, nxt - ub)
        assert np.mean(viol) < 0.2

    def test_bad_steps_raise(self, setup, rng):
        task, fom, total, critic, actor, elite = setup
        with pytest.raises(ValueError):
            train_actor(actor, critic, fom, total, elite, steps=0,
                        batch_size=8, lambda_viol=1.0, rng=rng)


class TestProposeDesign:
    def test_proposal_in_unit_cube(self, setup, rng):
        task, fom, total, critic, actor, elite = setup
        p = propose_design(actor, critic, fom, elite)
        assert p.shape == (task.d,)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)

    def test_proposal_is_elite_plus_action(self, setup):
        task, fom, total, critic, actor, elite = setup
        p = propose_design(actor, critic, fom, elite)
        states = elite.designs()
        actions = actor.act(states)
        succ = np.clip(states + actions, 0.0, 1.0)
        dists = np.linalg.norm(succ - p, axis=1)
        assert np.min(dists) < 1e-12

    def test_picks_predicted_argmin(self, setup):
        task, fom, total, critic, actor, elite = setup
        states = elite.designs()
        actions = actor.act(states)
        g = fom(critic.predict(states, actions))
        k = int(np.argmin(g))
        expected = np.clip(states[k] + actions[k], 0.0, 1.0)
        np.testing.assert_allclose(propose_design(actor, critic, fom, elite),
                                   expected)
