"""Tests for training extensions: state distributions, proposal diversity,
per-simulation training equalization."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig
from repro.core.fom import FigureOfMerit
from repro.core.ma_opt import MAOptimizer
from repro.core.networks import Actor, Critic
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.synthetic import ConstrainedSphere
from repro.core.training import propose_design, train_actor


@pytest.fixture
def setup(rng):
    task = ConstrainedSphere(d=4, seed=0)
    fom = FigureOfMerit(task)
    total = TotalDesignSet(task.d, task.m + 1)
    for x in task.space.sample(rng, 30):
        mv = task.evaluate(x)
        total.add(x, mv, float(fom(mv)))
    critic = Critic(task.d, task.m + 1, hidden=(16, 16), seed=1)
    critic.fit_scaler(total.metrics)
    actor = Actor(task.d, hidden=(16, 16), seed=2, action_scale=0.3)
    elite = EliteSet(total, n_es=6)
    return task, fom, total, critic, actor, elite


class TestTrainOnModes:
    @pytest.mark.parametrize("mode", ["elite", "total", "mixed"])
    def test_all_modes_run(self, setup, rng, mode):
        task, fom, total, critic, actor, elite = setup
        loss = train_actor(actor, critic, fom, total, elite, steps=5,
                           batch_size=8, lambda_viol=1.0, rng=rng,
                           train_on=mode)
        assert np.isfinite(loss)

    def test_unknown_mode_raises(self, setup, rng):
        task, fom, total, critic, actor, elite = setup
        with pytest.raises(ValueError):
            train_actor(actor, critic, fom, total, elite, steps=1,
                        batch_size=8, lambda_viol=1.0, rng=rng,
                        train_on="sometimes")

    def test_config_validates_mode(self):
        with pytest.raises(ValueError):
            MAOptConfig(actor_train_on="sometimes")


class TestProposalDiversity:
    def test_excluded_neighbourhood_avoided(self, setup):
        task, fom, total, critic, actor, elite = setup
        first = propose_design(actor, critic, fom, elite)
        second = propose_design(actor, critic, fom, elite,
                                exclude=[first], min_dist=0.05)
        # Either the second proposal is genuinely far from the first, or
        # every candidate was close and the fallback returned the argmin.
        states = elite.designs()
        succ = np.clip(states + actor.act(states), 0.0, 1.0)
        distances = np.linalg.norm(succ - first, axis=1)
        if np.any(distances >= 0.05):
            assert np.linalg.norm(second - first) >= 0.05

    def test_fallback_when_all_candidates_taken(self, setup):
        task, fom, total, critic, actor, elite = setup
        states = elite.designs()
        succ = np.clip(states + actor.act(states), 0.0, 1.0)
        # Exclude everything with a huge radius: must still return a design.
        out = propose_design(actor, critic, fom, elite,
                             exclude=[s for s in succ], min_dist=10.0)
        assert out.shape == (task.d,)

    def test_round_proposals_pairwise_distinct(self):
        task = ConstrainedSphere(d=6, seed=2)
        cfg = MAOptConfig(seed=0, critic_steps=10, actor_steps=5,
                          batch_size=16, n_elite=6, hidden=(16, 16),
                          proposal_min_dist=0.05)
        opt = MAOptimizer(task, cfg)
        opt.initialize(n_init=15)
        recs = opt.step()
        xs = [r.x for r in recs]
        for i in range(len(xs)):
            for j in range(i + 1, len(xs)):
                # distinct unless the fallback fired (rare with fresh nets)
                assert np.linalg.norm(xs[i] - xs[j]) > 1e-9


class TestTrainingEqualization:
    def test_critic_steps_scaled_by_round_size(self, monkeypatch):
        task = ConstrainedSphere(d=4, seed=1)
        cfg = MAOptConfig(seed=0, n_actors=3, critic_steps=7, actor_steps=3,
                          batch_size=8, n_elite=5, hidden=(8, 8),
                          scale_training_with_actors=True)
        opt = MAOptimizer(task, cfg)
        opt.initialize(n_init=10)
        seen = {}

        import repro.core.ma_opt as mod

        real = mod.train_critic

        def spy(critic, total, steps, batch_size, rng, **kwargs):
            seen["steps"] = steps
            return real(critic, total, steps, batch_size, rng, **kwargs)

        monkeypatch.setattr(mod, "train_critic", spy)
        opt.optimization_round()
        assert seen["steps"] == 21  # 7 * 3 actors

    def test_scaling_disabled(self, monkeypatch):
        task = ConstrainedSphere(d=4, seed=1)
        cfg = MAOptConfig(seed=0, n_actors=3, critic_steps=7, actor_steps=3,
                          batch_size=8, n_elite=5, hidden=(8, 8),
                          scale_training_with_actors=False)
        opt = MAOptimizer(task, cfg)
        opt.initialize(n_init=10)
        seen = {}
        import repro.core.ma_opt as mod

        real = mod.train_critic

        def spy(critic, total, steps, batch_size, rng, **kwargs):
            seen["steps"] = steps
            return real(critic, total, steps, batch_size, rng, **kwargs)

        monkeypatch.setattr(mod, "train_critic", spy)
        opt.optimization_round()
        assert seen["steps"] == 7
