"""Tests for ensemble-UCB exploration."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig
from repro.core.fom import FigureOfMerit
from repro.core.ma_opt import MAOptimizer
from repro.core.networks import Actor, CriticEnsemble
from repro.core.population import EliteSet, TotalDesignSet
from repro.core.synthetic import ConstrainedSphere
from repro.core.training import propose_design

FAST = dict(critic_steps=15, actor_steps=8, batch_size=16, n_elite=6,
            hidden=(16, 16))


@pytest.fixture
def setup(rng):
    task = ConstrainedSphere(d=4, seed=0)
    fom = FigureOfMerit(task)
    total = TotalDesignSet(task.d, task.m + 1)
    for x in task.space.sample(rng, 25):
        mv = task.evaluate(x)
        total.add(x, mv, float(fom(mv)))
    ens = CriticEnsemble(task.d, task.m + 1, 3, hidden=(16,), seed=1)
    ens.fit_scaler(total.metrics)
    actor = Actor(task.d, hidden=(16,), seed=2, action_scale=0.3)
    elite = EliteSet(total, n_es=6)
    return task, fom, total, ens, actor, elite


class TestUCBProposal:
    def test_ucb_can_change_selection(self, setup):
        task, fom, total, ens, actor, elite = setup
        base = propose_design(actor, ens, fom, elite, ucb_beta=0.0)
        optimistic = propose_design(actor, ens, fom, elite, ucb_beta=50.0)
        # With a huge beta the disagreement bonus dominates; the selection
        # may move (not guaranteed for every seed, but the call must work
        # and stay in the cube either way).
        for p in (base, optimistic):
            assert np.all(p >= 0.0) and np.all(p <= 1.0)

    def test_ucb_ignored_for_single_critic(self, setup, rng):
        """A plain critic has no members; beta must be a no-op, not a crash."""
        from repro.core.networks import Critic

        task, fom, total, _, actor, elite = setup
        critic = Critic(task.d, task.m + 1, hidden=(16,), seed=3)
        critic.fit_scaler(total.metrics)
        a = propose_design(actor, critic, fom, elite, ucb_beta=0.0)
        b = propose_design(actor, critic, fom, elite, ucb_beta=5.0)
        np.testing.assert_allclose(a, b)


class TestConfigWiring:
    def test_ucb_requires_ensemble(self):
        with pytest.raises(ValueError):
            MAOptConfig(ucb_beta=0.5)  # n_critics defaults to 1

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            MAOptConfig(ucb_beta=-1.0, n_critics=3)

    def test_full_run_with_ucb(self):
        task = ConstrainedSphere(d=5, seed=1)
        cfg = MAOptConfig(seed=0, n_critics=3, ucb_beta=0.3, **FAST)
        res = MAOptimizer(task, cfg).run(n_sims=9, n_init=10)
        assert res.n_sims == 9
        assert np.isfinite(res.best_fom)
