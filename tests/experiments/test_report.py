"""Tests for the bench-report assembler."""

import pathlib

from repro.experiments.report import build_report


class TestBuildReport:
    def test_includes_existing_artifacts(self, tmp_path):
        (tmp_path / "table1_ota_params.txt").write_text("OTA TABLE BODY")
        text = build_report(tmp_path)
        assert "OTA TABLE BODY" in text
        assert "# MA-Opt reproduction" in text

    def test_marks_missing_artifacts(self, tmp_path):
        text = build_report(tmp_path)
        assert "missing" in text
        assert "table2_ota_comparison.txt" in text

    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "REPORT.md"
        build_report(tmp_path, out)
        assert out.exists()
        assert out.read_text().startswith("# MA-Opt reproduction")

    def test_real_results_dir_if_present(self):
        results = pathlib.Path("benchmarks/results")
        if not results.exists():
            return
        text = build_report(results)
        assert "Algorithm comparisons" in text
