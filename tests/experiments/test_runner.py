"""Tests for the shared-initial-set comparison protocol."""

import numpy as np
import pytest

from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set, run_comparison, run_method

FAST = {"critic_steps": 20, "actor_steps": 10, "batch_size": 16, "n_elite": 6}


@pytest.fixture
def task():
    return ConstrainedSphere(d=5, seed=4)


class TestInitialSet:
    def test_shapes(self, task):
        x, f = make_initial_set(task, 12, seed=0)
        assert x.shape == (12, 5)
        assert f.shape == (12, task.m + 1)

    def test_seeded_reproducibility(self, task):
        x1, _ = make_initial_set(task, 8, seed=3)
        x2, _ = make_initial_set(task, 8, seed=3)
        np.testing.assert_array_equal(x1, x2)


class TestRunMethod:
    def test_all_paper_methods_run(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        for m in ("BO", "DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt"):
            res = run_method(m, task, 6, x, f, seed=1, maopt_overrides=FAST)
            assert res.method == m
            assert res.n_sims == 6

    def test_extra_methods_run(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        for m in ("Random", "PSO", "DE"):
            res = run_method(m, task, 6, x, f, seed=1)
            assert res.n_sims == 6

    def test_unknown_method_raises(self, task):
        x, f = make_initial_set(task, 5, seed=0)
        with pytest.raises(ValueError):
            run_method("SGD", task, 3, x, f)

    def test_same_init_best_across_methods(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        res = {m: run_method(m, task, 4, x, f, seed=1,
                             maopt_overrides=FAST)
               for m in ("Random", "DNN-Opt", "MA-Opt")}
        vals = {r.init_best_fom for r in res.values()}
        assert len(vals) == 1  # identical shared initial set


class TestRunComparison:
    def test_structure(self, task):
        out = run_comparison(task, ["Random", "MA-Opt"], n_runs=2,
                             n_sims=6, n_init=8, seed=0,
                             maopt_overrides=FAST)
        assert set(out) == {"Random", "MA-Opt"}
        assert all(len(v) == 2 for v in out.values())

    def test_per_repeat_init_sets_differ(self, task):
        out = run_comparison(task, ["Random"], n_runs=2, n_sims=4,
                             n_init=8, seed=0)
        r0, r1 = out["Random"]
        assert r0.init_best_fom != r1.init_best_fom


class TestInitialSetTelemetry:
    def test_counted_and_policy_covered(self, task):
        from repro.core.config import ResilienceConfig
        from repro.obs import MetricsRegistry, Telemetry
        from repro.resilience.faults import FaultyTask

        reg = MetricsRegistry()
        faulty = FaultyTask(task, error_rate=0.3, seed=0)
        x, f = make_initial_set(faulty, 10, seed=0,
                                telemetry=Telemetry(metrics=reg),
                                resilience=ResilienceConfig(max_retries=3))
        assert x.shape == (10, 5) and np.all(np.isfinite(f))
        assert reg.counter_value("sims_total", kind="init") == 10


class TestResumableComparison:
    def test_completed_cells_are_skipped(self, task, tmp_path):
        ckpt = tmp_path / "cmp"
        kwargs = dict(n_runs=2, n_sims=5, n_init=8, seed=0,
                      maopt_overrides=FAST, checkpoint_dir=ckpt)
        first = run_comparison(task, ["Random", "DNN-Opt"], **kwargs)
        assert len(list(ckpt.glob("*.npz"))) == 4
        # Second invocation restores every cell from the archives without
        # re-running anything; results must match bit-for-bit.
        second = run_comparison(task, ["Random", "DNN-Opt"], **kwargs)
        for method in ("Random", "DNN-Opt"):
            for a, b in zip(first[method], second[method]):
                np.testing.assert_array_equal(
                    [r.fom for r in a.records], [r.fom for r in b.records])

    def test_partial_directory_resumes(self, task, tmp_path):
        ckpt = tmp_path / "cmp"
        kwargs = dict(n_runs=1, n_sims=5, n_init=8, seed=0,
                      maopt_overrides=FAST, checkpoint_dir=ckpt)
        only_random = run_comparison(task, ["Random"], **kwargs)
        both = run_comparison(task, ["Random", "DNN-Opt"], **kwargs)
        # the archived Random run is reused verbatim ...
        np.testing.assert_array_equal(
            [r.fom for r in only_random["Random"][0].records],
            [r.fom for r in both["Random"][0].records])
        # ... and the missing cell was run and archived
        assert (ckpt / "DNN-Opt_run0.npz").exists()
