"""Tests for the shared-initial-set comparison protocol."""

import numpy as np
import pytest

from repro.core.synthetic import ConstrainedSphere
from repro.experiments import make_initial_set, run_comparison, run_method

FAST = {"critic_steps": 20, "actor_steps": 10, "batch_size": 16, "n_elite": 6}


@pytest.fixture
def task():
    return ConstrainedSphere(d=5, seed=4)


class TestInitialSet:
    def test_shapes(self, task):
        x, f = make_initial_set(task, 12, seed=0)
        assert x.shape == (12, 5)
        assert f.shape == (12, task.m + 1)

    def test_seeded_reproducibility(self, task):
        x1, _ = make_initial_set(task, 8, seed=3)
        x2, _ = make_initial_set(task, 8, seed=3)
        np.testing.assert_array_equal(x1, x2)


class TestRunMethod:
    def test_all_paper_methods_run(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        for m in ("BO", "DNN-Opt", "MA-Opt1", "MA-Opt2", "MA-Opt"):
            res = run_method(m, task, 6, x, f, seed=1, maopt_overrides=FAST)
            assert res.method == m
            assert res.n_sims == 6

    def test_extra_methods_run(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        for m in ("Random", "PSO", "DE"):
            res = run_method(m, task, 6, x, f, seed=1)
            assert res.n_sims == 6

    def test_unknown_method_raises(self, task):
        x, f = make_initial_set(task, 5, seed=0)
        with pytest.raises(ValueError):
            run_method("SGD", task, 3, x, f)

    def test_same_init_best_across_methods(self, task):
        x, f = make_initial_set(task, 10, seed=0)
        res = {m: run_method(m, task, 4, x, f, seed=1,
                             maopt_overrides=FAST)
               for m in ("Random", "DNN-Opt", "MA-Opt")}
        vals = {r.init_best_fom for r in res.values()}
        assert len(vals) == 1  # identical shared initial set


class TestRunComparison:
    def test_structure(self, task):
        out = run_comparison(task, ["Random", "MA-Opt"], n_runs=2,
                             n_sims=6, n_init=8, seed=0,
                             maopt_overrides=FAST)
        assert set(out) == {"Random", "MA-Opt"}
        assert all(len(v) == 2 for v in out.values())

    def test_per_repeat_init_sets_differ(self, task):
        out = run_comparison(task, ["Random"], n_runs=2, n_sims=4,
                             n_init=8, seed=0)
        r0, r1 = out["Random"]
        assert r0.init_best_fom != r1.init_best_fom
