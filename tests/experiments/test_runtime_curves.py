"""Tests for the runtime-fair FoM comparison curves."""

import numpy as np
import pytest

from repro.core.result import EvaluationRecord, OptimizationResult
from repro.experiments.figures import fom_vs_runtime_curves


def timed_result(method, foms, dt=1.0):
    records = [
        EvaluationRecord(index=i, x=np.zeros(1), metrics=np.zeros(1),
                         fom=f, kind=method, t_wall=(i + 1) * dt)
        for i, f in enumerate(foms)
    ]
    return OptimizationResult("t", method, records=records,
                              init_best_fom=max(foms) + 1.0)


class TestRecordTimestamps:
    def test_ma_opt_records_timestamps(self):
        from repro.core.config import MAOptConfig
        from repro.core.ma_opt import MAOptimizer
        from repro.core.synthetic import ConstrainedSphere

        task = ConstrainedSphere(d=4, seed=0)
        cfg = MAOptConfig(seed=0, critic_steps=10, actor_steps=5,
                          batch_size=8, n_elite=5, hidden=(8, 8))
        res = MAOptimizer(task, cfg).run(n_sims=6, n_init=8)
        times = [r.t_wall for r in res.records]
        assert times[0] >= 0.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_baseline_records_timestamps(self):
        from repro.baselines import RandomSearch
        from repro.core.synthetic import ConstrainedSphere

        task = ConstrainedSphere(d=4, seed=0)
        res = RandomSearch(task, seed=0).run(n_sims=5, n_init=5)
        assert all(r.t_wall >= 0 for r in res.records)


class TestRuntimeCurves:
    def test_time_axis_common_grid(self):
        results = {
            "fast": [timed_result("fast", [3.0, 2.0, 1.0], dt=0.5)],
            "slow": [timed_result("slow", [3.0, 2.5, 2.0], dt=2.0)],
        }
        curves = fom_vs_runtime_curves(results, n_points=10)
        t_fast, y_fast = curves["fast"]
        t_slow, y_slow = curves["slow"]
        assert t_fast[-1] == pytest.approx(1.5)
        assert t_slow[-1] == pytest.approx(6.0)
        assert all(b <= a + 1e-12 for a, b in zip(y_fast, y_fast[1:]))

    def test_before_first_sim_uses_init_best(self):
        res = timed_result("m", [0.5], dt=10.0)
        curves = fom_vs_runtime_curves({"m": [res]}, n_points=5)
        _, y = curves["m"]
        assert y[0] == pytest.approx(np.log10(res.init_best_fom))

    def test_mean_over_runs(self):
        results = {"m": [timed_result("m", [4.0, 2.0], dt=1.0),
                         timed_result("m", [4.0, 1.0], dt=1.0)]}
        _, y = fom_vs_runtime_curves(results, n_points=4)["m"]
        assert y[-1] == pytest.approx(np.log10(1.5))

    def test_empty_results_skipped(self):
        assert fom_vs_runtime_curves({"m": []}) == {}


class TestRenderAsciiFloatAxis:
    def test_float_time_axis_never_overflows(self):
        """Regression: non-integer x endpoints used to overflow the grid."""
        from repro.experiments.figures import render_ascii

        results = {"m": [timed_result("m", [3.0, 2.0, 1.0], dt=12.966)]}
        curves = fom_vs_runtime_curves(results, n_points=40)
        art = render_ascii(curves, title="t-axis")
        assert "t-axis" in art

    def test_zero_span_axis(self):
        from repro.experiments.figures import render_ascii
        import numpy as np

        curves = {"m": (np.array([0.0, 0.0]), np.array([-1.0, -2.0]))}
        art = render_ascii(curves)
        assert "m" in art
