"""Tests for the statistical-significance helpers."""

import numpy as np

from repro.core.result import EvaluationRecord, OptimizationResult
from repro.experiments.tables import render_significance, significance_matrix


def result_with_fom(method, fom):
    rec = EvaluationRecord(index=0, x=np.zeros(1), metrics=np.zeros(1),
                           fom=fom, kind=method)
    return OptimizationResult("t", method, records=[rec],
                              init_best_fom=fom + 1.0)


class TestSignificance:
    def test_clearly_different_methods_low_p(self):
        results = {
            "good": [result_with_fom("good", f)
                     for f in (0.01, 0.012, 0.011, 0.013, 0.009)],
            "bad": [result_with_fom("bad", f)
                    for f in (1.0, 1.1, 0.9, 1.05, 0.95)],
        }
        methods, p = significance_matrix(results)
        i, j = methods.index("good"), methods.index("bad")
        assert p[i, j] < 0.05

    def test_identical_methods_high_p(self):
        foms = (0.5, 0.6, 0.4, 0.55, 0.45)
        results = {
            "a": [result_with_fom("a", f) for f in foms],
            "b": [result_with_fom("b", f) for f in foms],
        }
        _, p = significance_matrix(results)
        assert p[0, 1] > 0.5

    def test_matrix_symmetric_unit_diagonal(self):
        results = {
            "a": [result_with_fom("a", f) for f in (0.1, 0.2, 0.3)],
            "b": [result_with_fom("b", f) for f in (0.2, 0.3, 0.4)],
            "c": [result_with_fom("c", f) for f in (1.0, 2.0, 3.0)],
        }
        _, p = significance_matrix(results)
        np.testing.assert_allclose(p, p.T)
        np.testing.assert_allclose(np.diag(p), 1.0)

    def test_single_run_uninformative(self):
        results = {"a": [result_with_fom("a", 0.1)],
                   "b": [result_with_fom("b", 9.9)]}
        _, p = significance_matrix(results)
        assert p[0, 1] == 1.0  # too few runs to conclude anything

    def test_render_contains_methods(self):
        results = {
            "a": [result_with_fom("a", f) for f in (0.1, 0.2, 0.3)],
            "b": [result_with_fom("b", f) for f in (0.4, 0.5, 0.6)],
        }
        text = render_significance(results)
        assert "Mann-Whitney" in text
        assert "a" in text and "b" in text
