"""Tests for table and figure builders."""

import numpy as np
import pytest

from repro.core.result import EvaluationRecord, OptimizationResult
from repro.core.synthetic import QuadraticAmplifierToy
from repro.experiments import comparison_table, fom_curves, parameter_table
from repro.experiments.figures import curves_to_csv, render_ascii
from repro.experiments.tables import summarize_method


def fake_result(method, foms, feasible_targets=(), wall=60.0):
    records = [
        EvaluationRecord(index=i, x=np.zeros(2),
                         metrics=np.array([1.0, 0.0]), fom=f, kind=method)
        for i, f in enumerate(foms)
    ]
    for i, t in enumerate(feasible_targets):
        records[i].feasible = True
        records[i].metrics = np.array([t, 0.0])
    return OptimizationResult("toy", method, records=records,
                              init_best_fom=max(foms) + 1.0,
                              wall_time_s=wall)


class TestSummaries:
    def test_success_fraction(self):
        rows = summarize_method([
            fake_result("m", [1.0, 0.5], feasible_targets=[2e-3]),
            fake_result("m", [1.0, 0.5]),
        ])
        assert rows["success"] == "1/2"
        assert rows["success_rate"] == 0.5

    def test_min_target_over_runs(self):
        rows = summarize_method([
            fake_result("m", [1.0], feasible_targets=[3e-3]),
            fake_result("m", [1.0], feasible_targets=[1e-3]),
        ])
        assert rows["min_target"] == pytest.approx(1e-3)

    def test_min_target_none_when_never_feasible(self):
        rows = summarize_method([fake_result("m", [1.0])])
        assert rows["min_target"] is None

    def test_log10_avg_fom(self):
        rows = summarize_method([fake_result("m", [0.01]),
                                 fake_result("m", [0.1])])
        assert rows["log10_avg_fom"] == pytest.approx(np.log10(0.055))

    def test_runtime_hours(self):
        rows = summarize_method([fake_result("m", [1.0], wall=3600.0)])
        assert rows["total_runtime_h"] == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_method([])


class TestTableRendering:
    def test_comparison_table_text(self):
        task = QuadraticAmplifierToy()
        results = {
            "BO": [fake_result("BO", [0.5, 0.2])],
            "MA-Opt": [fake_result("MA-Opt", [0.1, 0.05],
                                   feasible_targets=[4e-4])],
        }
        text = comparison_table(results, task)
        assert "BO" in text and "MA-Opt" in text
        assert "Success rate" in text
        assert "log10(average FoM)" in text
        assert "0.0004" in text  # unitless target rendered unscaled

    def test_parameter_table_text(self):
        text = parameter_table(QuadraticAmplifierToy())
        assert "w" in text and "i" in text


class TestFigures:
    def test_curves_shapes(self):
        results = {"A": [fake_result("A", [3.0, 2.0, 1.0]),
                         fake_result("A", [2.0, 2.0, 0.5])]}
        curves = fom_curves(results)
        x, y = curves["A"]
        assert len(x) == 4  # n_sims + 1
        assert y[0] >= y[-1]  # best-so-far decreases

    def test_curves_average_runs(self):
        results = {"A": [fake_result("A", [10.0]), fake_result("A", [1.0])]}
        _, y = fom_curves(results)["A"]
        # final mean best-so-far fom: runs end at 10 and 1 -> mean 5.5
        assert y[-1] == pytest.approx(np.log10(5.5))

    def test_ascii_render_contains_legend(self):
        results = {"A": [fake_result("A", [3.0, 1.0])]}
        art = render_ascii(fom_curves(results), title="demo")
        assert "demo" in art
        assert "a = A" in art

    def test_csv_export(self):
        results = {"A": [fake_result("A", [3.0, 1.0])],
                   "B": [fake_result("B", [2.0, 0.5])]}
        csv = curves_to_csv(fom_curves(results))
        lines = csv.splitlines()
        assert lines[0] == "sim,A,B"
        assert len(lines) == 4

    def test_empty_inputs(self):
        assert fom_curves({}) == {}
        assert curves_to_csv({}) == ""
        assert render_ascii({}) == "(no data)"


class TestBenchConfig:
    def test_defaults(self, monkeypatch):
        from repro.experiments import BenchConfig

        for var in ("MAOPT_BENCH_RUNS", "MAOPT_BENCH_SIMS",
                    "MAOPT_BENCH_INIT", "MAOPT_BENCH_FULL",
                    "MAOPT_BENCH_METHODS"):
            monkeypatch.delenv(var, raising=False)
        cfg = BenchConfig.from_env()
        assert cfg.n_runs == 2
        assert cfg.n_sims == 100
        assert cfg.fidelity == "fast"

    def test_full_mode(self, monkeypatch):
        from repro.experiments import BenchConfig

        monkeypatch.setenv("MAOPT_BENCH_FULL", "1")
        cfg = BenchConfig.from_env()
        assert cfg.n_runs == 10
        assert cfg.n_sims == 200
        assert cfg.n_init == 100
        assert cfg.fidelity == "full"

    def test_env_overrides(self, monkeypatch):
        from repro.experiments import BenchConfig

        monkeypatch.setenv("MAOPT_BENCH_RUNS", "5")
        monkeypatch.setenv("MAOPT_BENCH_METHODS", "MA-Opt, BO")
        cfg = BenchConfig.from_env()
        assert cfg.n_runs == 5
        assert cfg.methods == ("MA-Opt", "BO")
