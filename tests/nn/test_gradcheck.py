"""Finite-difference validation of every hand-written backward pass."""

import numpy as np
import pytest

from repro.nn import MLP, numerical_gradient


def loss_fn(out: np.ndarray) -> float:
    """An asymmetric smooth loss to exercise all gradient paths."""
    return float(np.sum(out**2) + 0.3 * np.sum(out**3))


def dloss(out: np.ndarray) -> np.ndarray:
    return 2.0 * out + 0.9 * out**2


@pytest.mark.parametrize("activation", ["tanh", "relu", "sigmoid", "leaky_relu"])
@pytest.mark.parametrize("output_activation", ["identity", "tanh"])
def test_backward_matches_finite_difference(activation, output_activation, rng):
    net = MLP([3, 7, 5, 2], activation=activation,
              output_activation=output_activation, seed=11)
    x = rng.normal(size=(6, 3))
    out = net.forward(x)
    net.zero_grad()
    net.backward(dloss(out))
    analytic = [p.grad.copy() for p in net.parameters()]
    numeric = numerical_gradient(net, loss_fn, x, eps=1e-6)
    for a, n in zip(analytic, numeric):
        np.testing.assert_allclose(a, n, rtol=1e-4, atol=1e-6)


def test_input_gradient_matches_finite_difference(rng):
    """The gradient returned by backward() w.r.t. the *input* is what actor
    training differentiates through the critic — it must be exact."""
    net = MLP([4, 9, 3], activation="tanh", seed=5)
    x = rng.normal(size=(2, 4))
    out = net.forward(x)
    din = net.backward(dloss(out))
    eps = 1e-6
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            xp = x.copy()
            xp[i, j] += eps
            hi = loss_fn(net.forward(xp))
            xp[i, j] -= 2 * eps
            lo = loss_fn(net.forward(xp))
            fd = (hi - lo) / (2 * eps)
            assert din[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)
