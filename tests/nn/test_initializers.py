"""Unit tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    get_initializer,
    glorot_uniform,
    he_normal,
    zeros_init,
)


class TestGlorot:
    def test_bounds(self, rng):
        w = glorot_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert w.shape == (100, 50)

    def test_spread_uses_range(self, rng):
        w = glorot_uniform(200, 200, rng)
        limit = np.sqrt(6.0 / 400)
        assert np.max(np.abs(w)) > 0.8 * limit


class TestHeNormal:
    def test_std_close_to_target(self, rng):
        w = he_normal(400, 100, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_mean_near_zero(self, rng):
        w = he_normal(300, 300, rng)
        assert abs(w.mean()) < 0.01


class TestZeros:
    def test_all_zero(self, rng):
        w = zeros_init(5, 7, rng)
        assert np.all(w == 0.0)
        assert w.shape == (5, 7)


class TestRegistry:
    def test_lookup(self):
        assert get_initializer("glorot_uniform") is glorot_uniform
        assert get_initializer("he_normal") is he_normal

    def test_unknown_lists_options(self):
        with pytest.raises(KeyError, match="glorot_uniform"):
            get_initializer("xavier")
