"""Unit tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Identity,
    LeakyReLU,
    Linear,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
    make_activation,
)


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0.0)

    def test_zero_grad_resets(self):
        p = Parameter(np.ones(4))
        p.grad += 2.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_shape_property(self):
        assert Parameter(np.zeros((5, 7))).shape == (5, 7)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(10, 4)))
        assert out.shape == (10, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_single_sample_promoted_to_2d(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(np.ones(4))
        assert out.shape == (1, 3)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_backward_accumulates_weight_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        g = np.ones((4, 2))
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, x.T @ g)
        np.testing.assert_allclose(layer.bias.grad, g.sum(axis=0))

    def test_backward_returns_input_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        g = rng.normal(size=(4, 2))
        din = layer.backward(g)
        np.testing.assert_allclose(din, g @ layer.weight.value.T)

    def test_bad_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)

    def test_parameters_listed(self, rng):
        layer = Linear(2, 2, rng=rng)
        assert len(layer.parameters()) == 2


@pytest.mark.parametrize("cls,fn,dfn", [
    (Tanh, np.tanh, lambda x: 1 - np.tanh(x) ** 2),
    (ReLU, lambda x: np.maximum(x, 0), lambda x: (x > 0).astype(float)),
    (Sigmoid, lambda x: 1 / (1 + np.exp(-x)),
     lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
])
class TestActivations:
    def test_forward(self, cls, fn, dfn, rng):
        act = cls()
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(act.forward(x), fn(x), atol=1e-12)

    def test_backward(self, cls, fn, dfn, rng):
        act = cls()
        x = rng.normal(size=(3, 5))
        act.forward(x)
        g = rng.normal(size=(3, 5))
        np.testing.assert_allclose(act.backward(g), g * dfn(x), atol=1e-12)


class TestLeakyReLU:
    def test_negative_slope(self):
        act = LeakyReLU(0.1)
        x = np.array([[-2.0, 3.0]])
        np.testing.assert_allclose(act.forward(x), [[-0.2, 3.0]])

    def test_backward_slopes(self):
        act = LeakyReLU(0.1)
        x = np.array([[-1.0, 1.0]])
        act.forward(x)
        np.testing.assert_allclose(act.backward(np.ones_like(x)), [[0.1, 1.0]])

    def test_invalid_slope_raises(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)


class TestIdentity:
    def test_passthrough(self, rng):
        act = Identity()
        x = rng.normal(size=(2, 2))
        np.testing.assert_array_equal(act.forward(x), x)
        np.testing.assert_array_equal(act.backward(x), x)


class TestMakeActivation:
    def test_known_names(self):
        assert isinstance(make_activation("tanh"), Tanh)
        assert isinstance(make_activation("relu"), ReLU)

    def test_unknown_raises_with_options(self):
        with pytest.raises(KeyError, match="tanh"):
            make_activation("nope")
