"""Unit tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn import huber_loss, mae_loss, mse_loss


class TestMSE:
    def test_zero_at_match(self, rng):
        y = rng.normal(size=(4, 3))
        loss, grad = mse_loss(y, y)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(y))

    def test_value(self):
        loss, _ = mse_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)

    def test_grad_matches_finite_diff(self, rng):
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, grad = mse_loss(pred, target)
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                p = pred.copy()
                p[i, j] += eps
                hi, _ = mse_loss(p, target)
                p[i, j] -= 2 * eps
                lo, _ = mse_loss(p, target)
                assert grad[i, j] == pytest.approx((hi - lo) / (2 * eps), rel=1e-4)

    def test_paper_normalization(self, rng):
        """Eq. 4 normalizes by N_b * (m+1) == element count."""
        pred = rng.normal(size=(5, 4))
        target = np.zeros((5, 4))
        loss, _ = mse_loss(pred, target)
        assert loss == pytest.approx(np.sum(pred**2) / 20)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))


class TestMAE:
    def test_value_and_grad_sign(self):
        loss, grad = mae_loss(np.array([[1.0, -2.0]]), np.array([[0.0, 0.0]]))
        assert loss == pytest.approx(1.5)
        assert grad[0, 0] > 0 and grad[0, 1] < 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae_loss(np.zeros(3), np.zeros(4))


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss, _ = huber_loss(np.array([[0.5]]), np.array([[0.0]]), delta=1.0)
        assert loss == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss, _ = huber_loss(np.array([[3.0]]), np.array([[0.0]]), delta=1.0)
        assert loss == pytest.approx(2.5)

    def test_grad_clipped(self):
        _, grad = huber_loss(np.array([[10.0]]), np.array([[0.0]]), delta=1.0)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_bad_delta_raises(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros((1, 1)), np.zeros((1, 1)), delta=0.0)
