"""Unit tests for repro.nn.mlp."""

import numpy as np
import pytest

from repro.nn import MLP


class TestConstruction:
    def test_layer_count(self):
        net = MLP([4, 8, 8, 2], seed=0)
        # 3 affine layers + 2 hidden activations (+ output identity dropped)
        assert len(net.layers) == 5

    def test_tanh_output_kept(self):
        net = MLP([2, 4, 1], output_activation="tanh", seed=0)
        assert len(net.layers) == 4

    def test_too_few_sizes_raises(self):
        with pytest.raises(ValueError):
            MLP([3])

    def test_in_out_features(self):
        net = MLP([7, 5, 3], seed=0)
        assert net.in_features == 7
        assert net.out_features == 3


class TestForward:
    def test_shapes(self, rng):
        net = MLP([4, 16, 3], seed=0)
        assert net.forward(rng.normal(size=(9, 4))).shape == (9, 3)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(5, 4))
        a = MLP([4, 8, 2], seed=42).forward(x)
        b = MLP([4, 8, 2], seed=42).forward(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, rng):
        x = rng.normal(size=(5, 4))
        a = MLP([4, 8, 2], seed=1).forward(x)
        b = MLP([4, 8, 2], seed=2).forward(x)
        assert not np.allclose(a, b)

    def test_predict_single_sample_returns_1d(self):
        net = MLP([4, 8, 2], seed=0)
        assert net.predict(np.zeros(4)).shape == (2,)

    def test_tanh_output_bounded(self, rng):
        net = MLP([3, 16, 3], output_activation="tanh", seed=0)
        out = net.forward(rng.normal(size=(20, 3)) * 10)
        assert np.all(np.abs(out) <= 1.0)


class TestWeights:
    def test_get_set_roundtrip(self, rng):
        net = MLP([3, 5, 2], seed=0)
        x = rng.normal(size=(4, 3))
        before = net.forward(x)
        weights = net.get_weights()
        for p in net.parameters():
            p.value += 1.0
        assert not np.allclose(net.forward(x), before)
        net.set_weights(weights)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_wrong_count_raises(self):
        net = MLP([3, 5, 2], seed=0)
        with pytest.raises(ValueError):
            net.set_weights(net.get_weights()[:-1])

    def test_set_weights_wrong_shape_raises(self):
        net = MLP([3, 5, 2], seed=0)
        w = net.get_weights()
        w[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(w)

    def test_copy_is_independent(self, rng):
        net = MLP([3, 5, 2], seed=0)
        clone = net.copy()
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(net.forward(x), clone.forward(x))
        for p in clone.parameters():
            p.value += 1.0
        assert not np.allclose(net.forward(x), clone.forward(x))


class TestTraining:
    def test_can_fit_linear_map(self, rng):
        net = MLP([2, 32, 1], activation="tanh", seed=0)
        from repro.nn import Adam, mse_loss

        opt = Adam(net.parameters(), lr=1e-2)
        w_true = np.array([[1.5], [-0.7]])
        x = rng.uniform(-1, 1, size=(128, 2))
        y = x @ w_true
        for _ in range(300):
            pred = net.forward(x)
            loss, dloss = mse_loss(pred, y)
            net.zero_grad()
            net.backward(dloss)
            opt.step()
        assert loss < 1e-3
