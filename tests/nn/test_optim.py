"""Unit tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.layers import Parameter


def quad_grad(p: Parameter) -> None:
    """Gradient of 0.5 * ||x - 3||^2."""
    p.grad[...] = p.value - 3.0


class TestSGD:
    def test_step_direction(self):
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1)
        quad_grad(p)
        opt.step()
        np.testing.assert_allclose(p.value, 0.3 * np.ones(3))

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.3)
        for _ in range(100):
            quad_grad(p)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.zeros(1))
        p_mom = Parameter(np.zeros(1))
        plain = SGD([p_plain], lr=0.01)
        mom = SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(50):
            quad_grad(p_plain)
            plain.step()
            quad_grad(p_mom)
            mom.step()
        assert abs(p_mom.value[0] - 3.0) < abs(p_plain.value[0] - 3.0)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.full(4, 10.0))
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            quad_grad(p)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step is ~lr regardless of
        gradient scale."""
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.5)
        p.grad[...] = 1000.0
        opt.step()
        assert p.value[0] == pytest.approx(-0.5, rel=1e-6)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_invalid_eps_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], eps=0.0)

    def test_zero_grad_helper(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p])
        p.grad += 5.0
        opt.zero_grad()
        assert np.all(p.grad == 0.0)
