"""Unit tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.layers import Parameter


def quad_grad(p: Parameter) -> None:
    """Gradient of 0.5 * ||x - 3||^2."""
    p.grad[...] = p.value - 3.0


class TestSGD:
    def test_step_direction(self):
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1)
        quad_grad(p)
        opt.step()
        np.testing.assert_allclose(p.value, 0.3 * np.ones(3))

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.3)
        for _ in range(100):
            quad_grad(p)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.zeros(1))
        p_mom = Parameter(np.zeros(1))
        plain = SGD([p_plain], lr=0.01)
        mom = SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(50):
            quad_grad(p_plain)
            plain.step()
            quad_grad(p_mom)
            mom.step()
        assert abs(p_mom.value[0] - 3.0) < abs(p_plain.value[0] - 3.0)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.full(4, 10.0))
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            quad_grad(p)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step is ~lr regardless of
        gradient scale."""
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.5)
        p.grad[...] = 1000.0
        opt.step()
        assert p.value[0] == pytest.approx(-0.5, rel=1e-6)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_invalid_eps_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], eps=0.0)

    def test_zero_grad_helper(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p])
        p.grad += 5.0
        opt.zero_grad()
        assert np.all(p.grad == 0.0)


class TestStateDict:
    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (Adam, {"lr": 0.01}),
    ])
    def test_resume_is_bit_exact(self, cls, kwargs):
        rng = np.random.default_rng(0)

        def fresh():
            ps = [Parameter(np.ones((3, 2))), Parameter(np.zeros(4))]
            return ps, cls(ps, **kwargs)

        def step(ps, opt, g):
            for p, grad in zip(ps, g):
                p.grad[...] = grad
            opt.step()

        grads = [[rng.normal(size=(3, 2)), rng.normal(size=4)]
                 for _ in range(6)]
        ps_a, opt_a = fresh()
        for g in grads:
            step(ps_a, opt_a, g)

        ps_b, opt_b = fresh()
        for g in grads[:3]:
            step(ps_b, opt_b, g)
        state = opt_b.state_dict()
        ps_c, opt_c = fresh()
        for p_c, p_b in zip(ps_c, ps_b):
            p_c.value[...] = p_b.value
        opt_c.load_state_dict(state)
        for g in grads[3:]:
            step(ps_c, opt_c, g)
        for p_a, p_c in zip(ps_a, ps_c):
            np.testing.assert_array_equal(p_a.value, p_c.value)

    def test_state_dict_is_a_copy(self):
        ps = [Parameter(np.ones(3))]
        opt = Adam(ps, lr=0.01)
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert np.all(opt._m[0] == 0.0)

    def test_length_mismatch_rejected(self):
        opt = SGD([Parameter(np.ones(3))], lr=0.1, momentum=0.5)
        with pytest.raises(ValueError):
            opt.load_state_dict({"velocity": []})
