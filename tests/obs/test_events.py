"""Unit + integration tests for the run-event stream."""

import json
import logging
import threading

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.obs import RunLogger, Telemetry, configure_logging

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


class TestRunLogger:
    def test_emit_and_filter(self):
        log = RunLogger()
        log.emit("evaluation", fom=1.0)
        log.emit("round_end", round=1)
        log.emit("evaluation", fom=0.5)
        assert len(log) == 3
        assert [e.payload["fom"] for e in log.events("evaluation")] == [1.0, 0.5]
        assert log.events("missing") == []

    def test_kind_key_allowed_in_payload(self):
        log = RunLogger()
        ev = log.emit("evaluation", kind="init")
        assert ev.payload["kind"] == "init"
        assert ev.kind == "evaluation"

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with RunLogger(path=str(path)) as log:
            log.emit("run_start", method="X")
            log.emit("evaluation", fom=1.25, feasible=True)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in rows] == ["run_start", "evaluation"]
        assert rows[1]["fom"] == 1.25
        assert rows[0]["t"] >= 0

    def test_close_idempotent(self, tmp_path):
        log = RunLogger(path=str(tmp_path / "e.jsonl"))
        log.emit("x")
        log.close()
        log.close()
        assert len(log) == 1  # in-memory events survive close

    def test_logging_mirror(self, caplog):
        log = RunLogger(logger="repro.test", level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.test"):
            log.emit("round_end", round=3, best_fom=0.5)
        assert "round_end" in caplog.text
        assert "best_fom=0.5" in caplog.text

    def test_concurrent_emit_keeps_lines_atomic(self, tmp_path):
        # The optimizer thread and the pool heartbeat thread share one
        # logger; every JSONL line must stay intact under that contention.
        path = tmp_path / "events.jsonl"
        log = RunLogger(path=str(path))
        n_threads, n_events = 8, 50

        def work(i):
            for j in range(n_events):
                log.emit("evaluation", thread=i, index=j)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == len(log) == n_threads * n_events
        for i in range(n_threads):
            indices = [r["index"] for r in rows if r["thread"] == i]
            assert indices == list(range(n_events))  # per-thread order kept

    def test_export_jsonl_from_memory(self, tmp_path):
        log = RunLogger()  # no streaming path
        log.emit("run_start", method="X")
        log.emit("run_end", best_fom=0.5)
        path = tmp_path / "dump.jsonl"
        assert log.export_jsonl(str(path)) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in rows] == ["run_start", "run_end"]

    def test_configure_logging_idempotent(self):
        logger = configure_logging("info")
        n = len(logger.handlers)
        assert configure_logging("info") is logger
        assert len(logger.handlers) == n


class TestOptimizerEvents:
    def _run(self, n_sims=6, n_init=8):
        log = RunLogger()
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST),
                          telemetry=Telemetry(run_logger=log))
        opt.run(n_sims=n_sims, n_init=n_init)
        return log

    def test_one_event_per_simulation(self):
        log = self._run(n_sims=6, n_init=8)
        evals = log.events("evaluation")
        # every simulation (init + post-init) has an event
        assert len(evals) == 8 + 6
        assert sum(e.payload["kind"] != "init" for e in evals) == 6

    def test_round_and_run_envelope(self):
        log = self._run()
        kinds = [e.kind for e in log.events()]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert len(log.events("round_start")) == len(log.events("round_end"))
        end = log.events("run_end")[0].payload
        assert end["n_sims"] == 6
        assert "best_fom" in end and "wall_time_s" in end

    def test_diagnostics_is_view_over_round_end(self):
        task = ConstrainedSphere(d=4, seed=0)
        log = RunLogger()
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST),
                          telemetry=Telemetry(run_logger=log))
        opt.initialize(n_init=8)
        opt.step()
        assert opt.diagnostics == [dict(e.payload)
                                   for e in log.events("round_end")]

    def test_events_jsonl_from_full_run(self, tmp_path):
        path = tmp_path / "run_events.jsonl"
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST),
                          telemetry=Telemetry(
                              run_logger=RunLogger(path=str(path))))
        res = opt.run(n_sims=4, n_init=6)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        n_evals = sum(r["event"] == "evaluation" for r in rows)
        assert n_evals >= res.n_sims  # >= 1 JSONL event per simulation
