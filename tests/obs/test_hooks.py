"""Observer callback tests across MAOptimizer and the baselines."""

from repro.baselines import RandomSearch
from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.result import OptimizationResult
from repro.core.synthetic import ConstrainedSphere
from repro.obs import BaseObserver, ObserverList, ObserverProtocol, Telemetry

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


class Recorder(BaseObserver):
    def __init__(self):
        self.calls = []

    def on_round_start(self, optimizer, round_index, kind):
        self.calls.append(("round_start", round_index, kind))

    def on_evaluation(self, optimizer, record):
        self.calls.append(("evaluation", record.kind, record.fom))

    def on_round_end(self, optimizer, round_index, info):
        self.calls.append(("round_end", round_index, info))

    def on_run_end(self, optimizer, result):
        self.calls.append(("run_end", result))

    def of(self, name):
        return [c for c in self.calls if c[0] == name]


class TestObserverList:
    def test_partial_observer_dispatch(self):
        hits = []

        class OnlyEval:
            def on_evaluation(self, opt, rec):
                hits.append(rec)

        olist = ObserverList([OnlyEval()])
        olist.emit("on_evaluation", None, "rec")
        olist.emit("on_round_end", None, 1, {})  # method absent: skipped
        assert hits == ["rec"]

    def test_extended_is_new_list(self):
        a, b = BaseObserver(), BaseObserver()
        olist = ObserverList([a])
        bigger = olist.extended([b])
        assert len(olist) == 1 and len(bigger) == 2
        assert olist.extended([]) is olist

    def test_protocol_runtime_check(self):
        assert isinstance(Recorder(), ObserverProtocol)


class TestMAOptimizerHooks:
    def test_callbacks_fire(self):
        rec = Recorder()
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST), observers=[rec])
        result = opt.run(n_sims=6, n_init=8)
        assert len(rec.of("evaluation")) == 6
        assert len(rec.of("round_start")) == len(rec.of("round_end"))
        assert len(rec.of("round_start")) >= 1
        (_, res), = rec.of("run_end")
        assert isinstance(res, OptimizationResult)
        assert res is result

    def test_round_end_info_matches_diagnostics(self):
        rec = Recorder()
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST), observers=[rec])
        opt.initialize(n_init=8)
        opt.step()
        (_, idx, info), = rec.of("round_end")
        assert idx == 1
        assert info == opt.diagnostics[0]

    def test_observers_via_telemetry_bundle(self):
        rec = Recorder()
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST),
                          telemetry=Telemetry(observers=[rec]))
        opt.run(n_sims=4, n_init=6)
        assert rec.of("evaluation")


class TestBaselineHooks:
    def test_callbacks_fire(self):
        rec = Recorder()
        task = ConstrainedSphere(d=4, seed=0)
        opt = RandomSearch(task, seed=0, observers=[rec])
        result = opt.run(n_sims=5, n_init=6)
        assert len(rec.of("evaluation")) == 5
        # baselines: one round per simulation
        assert len(rec.of("round_start")) == 5
        assert len(rec.of("round_end")) == 5
        (_, res), = rec.of("run_end")
        assert res is result
