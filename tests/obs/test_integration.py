"""End-to-end telemetry behavior of the optimizer stack."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.experiments.runner import make_initial_set, run_method
from repro.obs import MetricsRegistry, RunLogger, Telemetry, Tracer

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


class TestNearSamplingRouting:
    def test_ns_simulation_flows_through_executor(self):
        task = ConstrainedSphere(d=4, seed=0)
        reg = MetricsRegistry()
        cfg = MAOptConfig(seed=0, t_ns=1, ns_samples=50, **FAST)
        opt = MAOptimizer(task, cfg, telemetry=Telemetry(metrics=reg))
        opt.initialize(n_init=30)
        if not opt._specs_met():
            pytest.skip("init infeasible for this seed")
        record = opt.step()[0]
        assert record.kind == "ns"
        # the simulation went through the instrumented choke point
        assert reg.counter_value("sims_total", kind="ns") == 1
        assert opt._executor.batch_timings[-1].kind == "ns"
        # and produced the same metrics as a direct evaluation
        np.testing.assert_allclose(record.metrics, task.evaluate(record.x))


class TestTelemetryDefaults:
    def test_run_without_telemetry_has_no_sinks(self):
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST))
        assert opt.obs.tracer is None
        assert opt.obs.metrics is None
        assert not opt.obs.enabled
        res = opt.run(n_sims=4, n_init=6)
        # events still collected internally (diagnostics view needs them)
        assert len(opt.diagnostics) >= 1
        assert res.meta["diagnostics"] == opt.diagnostics

    def test_telemetry_does_not_change_results(self):
        task = ConstrainedSphere(d=4, seed=0)
        plain = MAOptimizer(task, MAOptConfig(seed=0, **FAST))
        res_plain = plain.run(n_sims=6, n_init=8)
        tel = Telemetry(tracer=Tracer(), metrics=MetricsRegistry(),
                        run_logger=RunLogger())
        traced = MAOptimizer(ConstrainedSphere(d=4, seed=0),
                             MAOptConfig(seed=0, **FAST), telemetry=tel)
        res_traced = traced.run(n_sims=6, n_init=8)
        np.testing.assert_allclose(res_plain.foms, res_traced.foms)


class TestRunnerThreading:
    def test_run_method_shares_bundle_across_methods(self):
        task = ConstrainedSphere(d=4, seed=0)
        tel = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        x, f = make_initial_set(task, 8, seed=0)
        run_method("Random", task, 4, x, f, seed=0, telemetry=tel)
        run_method("DNN-Opt", task, 4, x, f, seed=0,
                   maopt_overrides=FAST, telemetry=tel)
        roots = tel.tracer.roots()
        assert [r.name for r in roots] == ["run", "run"]
        assert {r.attrs["method"] for r in roots} == {"Random", "DNN-Opt"}
        assert tel.metrics.counter_value("sims_total", kind="Random") == 4
        assert tel.metrics.counter_value("sims_total", kind="actor") == 4


class TestWallClockConvention:
    def test_first_record_includes_training_time(self):
        # the clock starts when the first post-init round begins, so the
        # first record's t_wall includes that round's training work
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, MAOptConfig(
            seed=0, critic_steps=200, actor_steps=50, batch_size=16,
            n_elite=5, hidden=(16, 16)))
        opt.initialize(n_init=8)
        records = opt.step()
        assert records[0].t_wall > 0.0

    def test_t_wall_monotone(self):
        task = ConstrainedSphere(d=4, seed=0)
        res = MAOptimizer(task, MAOptConfig(seed=0, **FAST)).run(
            n_sims=6, n_init=8)
        walls = [r.t_wall for r in res.records]
        assert walls == sorted(walls)
        assert all(w > 0 for w in walls)
