"""Unit tests for the metrics registry."""

import csv
import json

from repro.obs import MetricsRegistry, Telemetry


class TestCounters:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("sims_total", kind="actor")
        reg.inc("sims_total", 3, kind="actor")
        reg.inc("sims_total", kind="ns")
        assert reg.counter_value("sims_total", kind="actor") == 4
        assert reg.counter_value("sims_total", kind="ns") == 1
        assert reg.counter_value("sims_total", kind="init") == 0

    def test_label_order_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", a=1, b=2)
        reg.inc("m", b=2, a=1)
        assert reg.counter_value("m", a=1, b=2) == 2
        assert "m{a=1,b=2}" in reg.snapshot()["counters"]


class TestGauges:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("best_fom", 2.0)
        reg.set_gauge("best_fom", 1.5)
        assert reg.gauge_value("best_fom") == 1.5
        assert reg.gauge_value("missing") is None


class TestHistograms:
    def test_stats(self):
        reg = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.observe("sim_latency_s", v)
        stats = reg.histogram_stats("sim_latency_s")
        assert stats["count"] == 4
        assert stats["sum"] == 10.0
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == 2.5
        assert 2.0 <= stats["p50"] <= 3.0

    def test_empty_series(self):
        reg = MetricsRegistry()
        assert reg.histogram_stats("nope") == {"count": 0}


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("sims_total", 5, kind="actor")
        reg.set_gauge("elite_box_width", 0.3)
        reg.observe("sim_latency_s", 0.01)
        reg.observe("sim_latency_s", 0.02)
        return reg

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["counters"] == {"sims_total{kind=actor}": 5}
        assert snap["gauges"] == {"elite_box_width": 0.3}
        assert snap["histograms"]["sim_latency_s"]["count"] == 2

    def test_json_export(self, tmp_path):
        path = tmp_path / "m.json"
        self._populated().export(str(path))
        data = json.loads(path.read_text())
        assert data["counters"]["sims_total{kind=actor}"] == 5

    def test_csv_export(self, tmp_path):
        path = tmp_path / "m.csv"
        self._populated().export(str(path))
        rows = list(csv.DictReader(path.read_text().splitlines()))
        by_metric = {r["metric"]: r for r in rows}
        assert by_metric["sims_total{kind=actor}"]["type"] == "counter"
        assert float(by_metric["sims_total{kind=actor}"]["value"]) == 5
        assert int(by_metric["sim_latency_s"]["count"]) == 2


class TestTelemetryHelpers:
    def test_null_helpers_noop(self):
        tel = Telemetry()
        tel.inc("a")
        tel.observe("b", 1.0)
        tel.set_gauge("c", 2.0)  # must not raise

    def test_bound_helpers_record(self):
        reg = MetricsRegistry()
        tel = Telemetry(metrics=reg)
        tel.inc("a", 2, kind="x")
        tel.observe("b", 1.0)
        tel.set_gauge("c", 2.0)
        assert reg.counter_value("a", kind="x") == 2
        assert reg.histogram_stats("b")["count"] == 1
        assert reg.gauge_value("c") == 2.0
