"""Tests for the wall-time breakdown report."""

import pytest

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.obs import Telemetry, Tracer
from repro.obs.report import (breakdown, load_trace, main, render_breakdown,
                              report_from_tracer)

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


def _traced_run(n_sims=6, n_init=8):
    tracer = Tracer()
    task = ConstrainedSphere(d=4, seed=0)
    opt = MAOptimizer(task, MAOptConfig(seed=0, **FAST),
                      telemetry=Telemetry(tracer=tracer))
    opt.run(n_sims=n_sims, n_init=n_init)
    return tracer


class TestBreakdown:
    def test_empty(self):
        assert breakdown([]) == []
        assert "empty" in render_breakdown([])

    def test_phases_cover_run(self):
        tracer = _traced_run()
        rows = breakdown(tracer.to_rows())
        phases = {r["phase"] for r in rows}
        assert {"critic-train", "actor-train", "propose", "simulate",
                "(other)", "total"} <= phases
        total_row = rows[-1]
        assert total_row["phase"] == "total"
        # leaves + (other) sum to ~100% of the root run span
        pct_sum = sum(r["pct"] for r in rows if r["phase"] != "total")
        assert pct_sum == pytest.approx(100.0, abs=0.5)
        assert total_row["pct"] == 100.0

    def test_span_tree_covers_required_phases(self):
        tracer = _traced_run()
        for phase in ("critic-train", "actor-train", "simulate"):
            assert tracer.find(phase), f"missing {phase} spans"
        # phases are nested under the run root
        run = tracer.roots()[0]
        assert run.name == "run"
        names = {s.name for s, _ in run.iter_tree()}
        assert {"round", "critic-train", "actor-train", "simulate"} <= names

    def test_render_contains_percent_column(self):
        tracer = _traced_run(n_sims=4, n_init=6)
        text = report_from_tracer(tracer)
        assert "phase" in text and "%" in text
        assert "critic-train" in text

    def test_degenerate_root_only_trace(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        rows = breakdown(tracer.to_rows())
        assert rows[-1]["phase"] == "total"
        assert rows[0]["phase"] == "run"


class TestCli:
    def test_main_on_exported_trace(self, tmp_path, capsys):
        tracer = _traced_run(n_sims=4, n_init=6)
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "critic-train" in out
        assert "100.0" in out

    def test_load_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"id": 0, "parent_id": null, "name": "run", '
                        '"duration_s": 1.0}\n\n')
        assert len(load_trace(str(path))) == 1
