"""Durable run store: recorder lifecycle, round-trip, lookup, exporters."""

import json

import pytest

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.obs import RunRecord, RunStore, Telemetry, Tracer, new_run_id
from repro.obs.store import (
    diff_runs,
    ensure_valid_manifest,
    export_prometheus_text,
    export_run,
    export_sarif,
    validate_manifest,
)

FAST = dict(critic_steps=10, actor_steps=5, batch_size=8, n_elite=5,
            hidden=(8, 8))


def _finished_run(store, seed=0, n_sims=6, method="MA-Opt"):
    task = ConstrainedSphere(d=4, seed=seed)
    rec = store.create_run(method=method, task=task.name,
                           meta={"seed": seed})
    opt = MAOptimizer(task, MAOptConfig(seed=seed, **FAST),
                      telemetry=rec.telemetry)
    result = opt.run(n_sims=n_sims, n_init=6)
    return rec, result


class TestRunId:
    def test_shape_and_uniqueness(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        stamp, _, suffix = a.rpartition("-")
        assert len(stamp) == 15 and len(suffix) == 6


class TestManifestSchema:
    def test_valid_manifest_passes(self, tmp_path):
        store = RunStore(tmp_path)
        rec, _ = _finished_run(store)
        assert validate_manifest(rec.record().manifest) == []

    def test_bad_docs_are_rejected(self):
        assert validate_manifest([]) != []
        assert any("schema" in p for p in validate_manifest({}))
        with pytest.raises(ValueError, match="bad status"):
            ensure_valid_manifest({"schema": "repro.obs/run",
                                   "schema_version": 1,
                                   "run_id": "x", "status": "bogus"})


class TestRoundTrip:
    def test_finished_run_record(self, tmp_path):
        store = RunStore(tmp_path)
        rec, result = _finished_run(store)
        record = store.load(rec.run_id)
        m = record.manifest
        assert m["status"] == "finished"
        assert m["n_sims"] == len(result.records)
        assert m["best_fom"] == pytest.approx(result.best_fom)
        assert m["wall_time_s"] > 0
        assert result.meta["run_id"] == rec.run_id
        # streamed events and finalize-time artifacts are all readable
        assert record.events("run_start")[0]["run_id"] == rec.run_id
        assert record.events("run_end")
        assert len(record.metric_snapshots()) >= 1  # one per round end
        assert record.final_metrics()["counters"]
        rows = record.trace_rows()
        assert any(r["name"] == "run" for r in rows)
        assert any(r["name"] == "simulate" for r in rows)

    def test_abandoned_run_stays_visible(self, tmp_path):
        store = RunStore(tmp_path)
        rec = store.create_run(method="MA-Opt", task="t")
        record = store.load(rec.run_id)
        assert record.manifest["status"] == "running"
        assert record.trace_rows() == []
        assert record.final_metrics() == {}

    def test_mark_failed(self, tmp_path):
        store = RunStore(tmp_path)
        rec = store.create_run(method="MA-Opt", task="t")
        rec.mark_failed("ValueError('boom')")
        m = rec.record().manifest
        assert m["status"] == "failed"
        assert "boom" in m["error"]

    def test_finalize_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        rec, _ = _finished_run(store)
        before = rec.record().manifest
        rec.finalize()
        rec.mark_failed("late")  # must not overwrite the sealed record
        assert rec.record().manifest == before

    def test_base_telemetry_channels_are_reused(self, tmp_path):
        tracer = Tracer()
        base = Telemetry(tracer=tracer)
        rec = RunStore(tmp_path).create_run(base=base)
        assert rec.telemetry.tracer is tracer
        assert rec.telemetry.run_id == rec.run_id
        assert rec.telemetry.metrics is not None


class TestStoreLookup:
    def test_list_and_resolve_prefix(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.create_run(run_id="20260101-000000-aaaaaa")
        store.create_run(run_id="20260102-000000-bbbbbb")
        assert store.run_ids() == ["20260101-000000-aaaaaa",
                                   "20260102-000000-bbbbbb"]
        assert store.load("20260101").run_id == a.run_id
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("2026010")
        with pytest.raises(KeyError, match="no run matching"):
            store.resolve("nope")

    def test_empty_store(self, tmp_path):
        store = RunStore(tmp_path / "missing")
        assert store.run_ids() == []
        assert store.list_runs() == []


class TestDiffAndExport:
    def test_diff_runs(self, tmp_path):
        store = RunStore(tmp_path)
        ra, _ = _finished_run(store, seed=0)
        rb, _ = _finished_run(store, seed=1, n_sims=9)
        diff = diff_runs(ra.record(), rb.record())
        assert diff["fields"]["n_sims"]["delta"] == 3
        assert "best_fom" in diff["fields"]
        assert "status" not in diff["fields"]  # identical fields are elided

    def test_prometheus_text(self, tmp_path):
        store = RunStore(tmp_path)
        rec, _ = _finished_run(store)
        text = export_prometheus_text(rec.record())
        assert "# TYPE sims_total counter" in text
        assert 'sims_total{kind="init"} 6' in text

    def test_sarif_shape(self, tmp_path):
        store = RunStore(tmp_path)
        rec, _ = _finished_run(store)
        doc = export_sarif(rec.record())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "ma-opt"
        assert run["properties"]["run_id"] == rec.run_id
        for result in run["results"]:
            assert result["level"] in ("warning", "note")

    def test_bundle_and_format_routing(self, tmp_path):
        store = RunStore(tmp_path)
        rec, _ = _finished_run(store)
        doc = json.loads(export_run(rec.record(), "json"))
        assert doc["schema"] == "repro.obs/run-export"
        assert doc["manifest"]["run_id"] == rec.run_id
        assert doc["events"] and doc["trace"]
        with pytest.raises(ValueError, match="unknown export format"):
            export_run(rec.record(), "xml")


class TestComparisonIntegration:
    def test_run_comparison_records_each_cell(self, tmp_path):
        from repro.experiments.runner import run_comparison

        store = RunStore(tmp_path)
        task = ConstrainedSphere(d=4, seed=0)
        run_comparison(task, ["Random", "MA-Opt"], n_runs=1, n_sims=5,
                       n_init=5, seed=0, maopt_overrides=FAST,
                       run_store=store)
        records = store.list_runs()
        assert sorted(r.manifest["method"] for r in records) == \
            ["MA-Opt", "Random"]
        assert all(r.manifest["status"] == "finished" for r in records)
        assert all(r.manifest["meta"]["repeat"] == 0 for r in records)
