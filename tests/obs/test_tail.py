"""Live-run tailing: offset-resume reads, state folding, the poll loop."""

import io
import json

import pytest

from repro.obs.store import EVENTS, METRICS_STREAM, RunStore
from repro.obs.tail import (
    TailState,
    read_new_lines,
    render,
    resolve_run_dir,
    tail_run,
)


def _append(path, *rows):
    with open(path, "a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")


class TestReadNewLines:
    def test_offset_resume(self, tmp_path):
        path = tmp_path / "f.jsonl"
        _append(path, {"a": 1}, {"a": 2})
        lines, offset = read_new_lines(path, 0)
        assert [json.loads(ln)["a"] for ln in lines] == [1, 2]
        # nothing new -> same offset, no lines
        assert read_new_lines(path, offset) == ([], offset)
        _append(path, {"a": 3})
        lines, offset2 = read_new_lines(path, offset)
        assert [json.loads(ln)["a"] for ln in lines] == [3]
        assert offset2 > offset

    def test_partial_line_left_in_flight(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"a": 1}\n{"a": 2')  # writer mid-append
        lines, offset = read_new_lines(path, 0)
        assert [json.loads(ln)["a"] for ln in lines] == [1]
        # completing the line makes it readable from the saved offset
        with open(path, "a") as fh:
            fh.write("}\n")
        lines, _ = read_new_lines(path, offset)
        assert json.loads(lines[0])["a"] == 2

    def test_missing_file(self, tmp_path):
        assert read_new_lines(tmp_path / "nope.jsonl", 0) == ([], 0)


class TestTailState:
    def test_event_folding(self):
        state = TailState()
        state.apply_event({"event": "run_start", "t": 0.0, "run_id": "r1",
                           "method": "MA-Opt", "task": "sphere4",
                           "n_sims": 4})
        assert state.status == "running" and state.n_sims_target == 4
        # init evaluations don't count against the post-init budget
        state.apply_event({"event": "evaluation", "kind": "init", "fom": 2.0})
        state.apply_event({"event": "evaluation", "kind": "actor",
                           "fom": 1.0})
        state.apply_event({"event": "evaluation", "kind": "actor",
                           "fom": 1.5})
        assert state.evaluations == 2
        assert state.best_fom == 1.0
        state.apply_event({"event": "sim_failed"})
        state.apply_event({"event": "lint_rejected"})
        state.apply_event({"event": "heartbeat", "t": 3.0, "beats": 7})
        state.apply_event({"event": "round_end", "round": 2,
                           "best_fom": 0.5})
        assert state.failures == 1 and state.lint_rejections == 1
        assert state.last_heartbeat["beats"] == 7
        assert state.rounds == 2 and state.best_fom == 0.5
        state.apply_event({"event": "run_end", "best_fom": 0.25})
        assert state.status == "finished" and state.best_fom == 0.25

    def test_metrics_folding(self):
        state = TailState()
        state.apply_metrics({
            "gauges": {"pool_workers_busy": 3.0},
            "histograms": {'sim_latency_s{kind="actor"}':
                           {"count": 4, "p50": 0.1, "p95": 0.2}},
            "counters": {'sim_retries_total{kind="actor"}': 2.0},
        })
        assert state.workers_busy == 3.0
        assert state.sim_p50 == 0.1 and state.sim_p95 == 0.2
        assert state.retries == 2.0

    def test_render(self):
        state = TailState(run_id="r1", method="MA-Opt", task="sphere4",
                          n_sims_target=8, evaluations=4)
        text = render(state)
        assert "run r1" in text and "4/8 (50%)" in text
        assert "stalled" not in text
        assert "stalled" in render(state, stalled_s=42.0)


class TestTailRun:
    def _run_dir(self, tmp_path):
        run_dir = tmp_path / "r1"
        run_dir.mkdir()
        _append(run_dir / EVENTS,
                {"event": "run_start", "t": 0.0, "run_id": "r1",
                 "method": "MA-Opt", "task": "sphere4", "n_sims": 2},
                {"event": "evaluation", "kind": "actor", "fom": 1.0})
        _append(run_dir / METRICS_STREAM,
                {"gauges": {"pool_workers_busy": 2.0}})
        return run_dir

    def test_once_renders_current_state(self, tmp_path):
        out = io.StringIO()
        state = tail_run(self._run_dir(tmp_path), once=True, out=out)
        assert state.status == "running"
        assert state.evaluations == 1
        assert state.workers_busy == 2.0
        assert "run r1" in out.getvalue()

    def test_follows_until_run_end(self, tmp_path):
        run_dir = self._run_dir(tmp_path)
        polls = []

        def fake_sleep(_s):
            # the writer appends between polls; run_end stops the loop
            polls.append(1)
            _append(run_dir / EVENTS,
                    {"event": "evaluation", "kind": "actor", "fom": 0.5},
                    {"event": "run_end", "best_fom": 0.5})

        out = io.StringIO()
        state = tail_run(run_dir, poll_s=0.0, out=out, sleep=fake_sleep)
        assert state.status == "finished"
        assert state.evaluations == 2
        assert len(polls) == 1  # resumed from the offset, not from scratch

    def test_max_polls_bounds_the_loop(self, tmp_path):
        out = io.StringIO()
        state = tail_run(self._run_dir(tmp_path), poll_s=0.0, max_polls=3,
                         out=out, sleep=lambda _s: None)
        assert state.status == "running"


class TestResolveRunDir:
    def test_path_and_store_lookup(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        rec = store.create_run(run_id="20260101-000000-abcdef")
        assert resolve_run_dir(str(rec.path)) == rec.path
        assert resolve_run_dir("20260101",
                               store_root=str(tmp_path / "runs")) == rec.path
        with pytest.raises(KeyError):
            resolve_run_dir("zzz", store_root=str(tmp_path / "runs"))
