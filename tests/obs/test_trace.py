"""Unit tests for the span tracer."""

import json
import threading

from repro.obs import NOOP_SPAN, Telemetry, Tracer


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
            with tracer.span("inner", k=2):
                pass
        roots = tracer.roots()
        assert len(roots) == 1
        assert roots[0].name == "outer"
        assert [c.name for c in roots[0].children] == ["inner", "inner"]
        assert roots[0].children[1].attrs == {"k": 2}

    def test_durations_nonnegative_and_nested_smaller(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.roots()[0]
        inner = outer.children[0]
        assert 0.0 <= inner.duration_s <= outer.duration_s

    def test_span_yields_span_object(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.attrs["extra"] = True
        root = tracer.roots()[0]
        assert root.attrs == {"size": 3, "extra": True}

    def test_find_and_total_time(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("round"):
                with tracer.span("train"):
                    pass
        assert len(tracer.find("train")) == 3
        assert tracer.total_time("train") <= tracer.total_time("round")

    def test_exception_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.roots()[0].name == "boom"
        # The stack unwound: a new span becomes a fresh root, not a child.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots()] == ["boom", "after"]

    def test_threads_build_separate_branches(self):
        tracer = Tracer()

        def work(i):
            with tracer.span("thread-root", i=i):
                with tracer.span("leaf"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        assert len(roots) == 4
        assert all(len(r.children) == 1 for r in roots)

    def test_concurrent_threads_keep_tree_consistent(self):
        # Heavier stress: many threads hammering one tracer must yield a
        # tree whose row count and parent links add up exactly.
        tracer = Tracer()
        n_threads, n_spans = 8, 25

        def work(i):
            for j in range(n_spans):
                with tracer.span("op", i=i, j=j):
                    with tracer.span("sub"):
                        pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.roots()) == n_threads * n_spans
        rows = tracer.to_rows()
        assert len(rows) == n_threads * n_spans * 2
        by_id = {r["id"]: r for r in rows}
        for row in rows:
            if row["name"] == "sub":
                assert by_id[row["parent_id"]]["name"] == "op"
            else:
                assert row["parent_id"] is None


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("phase", n=2):
                pass
        path = tmp_path / "trace.jsonl"
        n = tracer.export_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == n == 2
        by_name = {r["name"]: r for r in rows}
        assert by_name["run"]["parent_id"] is None
        assert by_name["phase"]["parent_id"] == by_name["run"]["id"]
        assert by_name["phase"]["depth"] == 1
        assert by_name["phase"]["attrs"] == {"n": 2}

    def test_numpy_attrs_serializable(self, tmp_path):
        import numpy as np

        tracer = Tracer()
        with tracer.span("s", width=np.float64(0.5), n=np.int64(3)):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(str(path))
        row = json.loads(path.read_text())
        assert row["attrs"] == {"width": 0.5, "n": 3}


class TestNoopPath:
    def test_noop_span_reusable(self):
        with NOOP_SPAN:
            with NOOP_SPAN:
                pass

    def test_null_telemetry_span_is_noop(self):
        tel = Telemetry()
        assert tel.span("anything", k=1) is NOOP_SPAN
        assert not tel.enabled

    def test_telemetry_with_tracer_records(self):
        tracer = Tracer()
        tel = Telemetry(tracer=tracer)
        assert tel.enabled
        with tel.span("x"):
            pass
        assert tracer.find("x")
