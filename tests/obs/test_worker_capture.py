"""Worker-side telemetry capture and its grafting into the parent tree."""

import numpy as np
import pytest

from repro.core.parallel import SimulationExecutor, _Heartbeat
from repro.core.synthetic import ConstrainedSphere
from repro.obs import (
    MetricsRegistry,
    RunLogger,
    Telemetry,
    Tracer,
    WorkerCapture,
    WorkerTelemetry,
    absorb_capture,
)


class TestWorkerTelemetry:
    def test_span_nesting_and_drain(self):
        wt = WorkerTelemetry()
        with wt.span("outer", attempt=0):
            with wt.span("inner"):
                pass
        wt.inc("worker_sims_total")
        wt.observe("lat", 0.25, kind="x")
        cap = wt.drain()
        assert isinstance(cap, WorkerCapture)
        assert cap.seq == 1 and cap.pid > 0
        assert [s.name for s in cap.spans] == ["outer"]
        assert [s.name for s in cap.spans[0].children] == ["inner"]
        assert cap.counters == [("worker_sims_total", 1.0, {})]
        assert cap.observations == [("lat", 0.25, {"kind": "x"})]

    def test_drain_resets_for_next_task(self):
        wt = WorkerTelemetry()
        with wt.span("a"):
            pass
        first = wt.drain()
        with wt.span("b"):
            pass
        second = wt.drain()
        assert [s.name for s in first.spans] == ["a"]
        assert [s.name for s in second.spans] == ["b"]
        assert second.seq == 2
        # re-based clock: span "b" starts near zero on the fresh epoch
        assert second.spans[0].t_start < 1.0

    def test_durations_are_recorded(self):
        wt = WorkerTelemetry()
        with wt.span("timed"):
            pass
        span = wt.drain().spans[0]
        assert span.duration_s >= 0
        assert span.t_start >= 0


class TestAbsorbCapture:
    def _capture(self):
        wt = WorkerTelemetry()
        with wt.span("worker-evaluate"):
            pass
        wt.inc("worker_sims_total", 2.0, kind="actor")
        wt.observe("h", 1.5)
        wt.set_gauge("g", 3.0)
        return wt.drain()

    def test_grafts_under_parent_with_pid_seq(self):
        tracer, reg = Tracer(), MetricsRegistry()
        telemetry = Telemetry(tracer=tracer, metrics=reg)
        with telemetry.span("simulate", n=1) as parent:
            absorb_capture(telemetry, self._capture(), parent)
        children = tracer.find("worker-evaluate")
        assert len(children) == 1
        assert children[0].attrs["pid"] > 0
        assert children[0].attrs["seq"] == 1
        # grafted spans are re-based onto the parent's clock
        assert children[0].t_start >= parent.t_start
        assert reg.counter_value("worker_sims_total", kind="actor") == 2.0
        assert reg.histogram_stats("h")["count"] == 1
        assert reg.gauge_value("g") == 3.0

    def test_none_parent_merges_metrics_only(self):
        reg = MetricsRegistry()
        telemetry = Telemetry(metrics=reg)  # no tracer -> span enter is None
        absorb_capture(telemetry, self._capture(), None)
        assert reg.counter_value("worker_sims_total", kind="actor") == 2.0

    def test_wants_worker_capture(self):
        assert not Telemetry().wants_worker_capture
        assert Telemetry(tracer=Tracer()).wants_worker_capture
        assert Telemetry(metrics=MetricsRegistry()).wants_worker_capture
        assert not Telemetry(run_logger=RunLogger()).wants_worker_capture


class TestHeartbeat:
    def test_beats_emit_events_and_refresh_gauge(self):
        reg, log = MetricsRegistry(), RunLogger()
        seen = []

        class Obs:
            def on_heartbeat(self, source, info):
                seen.append((source, info))

        telemetry = Telemetry(metrics=reg, run_logger=log, observers=[Obs()])
        hb = _Heartbeat(telemetry, interval_s=0.01, n=6, n_workers=2)
        import time
        time.sleep(0.08)
        hb.stop()
        beats = log.events("heartbeat")
        assert len(beats) >= 2
        assert beats[0].payload["n"] == 6
        assert beats[0].payload["workers"] == 2
        assert beats[-1].payload["beats"] == len(beats)
        assert reg.gauge_value("pool_workers_busy") == 2
        assert seen and seen[0][0] == "pool"

    def test_stop_is_prompt(self):
        hb = _Heartbeat(Telemetry(), interval_s=5.0, n=1, n_workers=1)
        hb.stop()  # must not wait out the interval
        assert not hb._thread.is_alive()


class TestBusyGaugeGuard:
    def test_gauge_reset_when_pool_map_raises(self):
        task = ConstrainedSphere(d=4, seed=0)
        reg = MetricsRegistry()
        ex = SimulationExecutor(task, n_workers=2,
                                telemetry=Telemetry(metrics=reg))

        class ExplodingPool:
            def map(self, fn, items):
                raise RuntimeError("worker died")

        ex._ensure_pool = lambda: ExplodingPool()
        with pytest.raises(RuntimeError):
            ex._plain_batch(task.space.sample(np.random.default_rng(0), 4),
                            use_pool=True)
        assert reg.gauge_value("pool_workers_busy") == 0


@pytest.mark.slow
class TestPooledCapture:
    def test_worker_spans_grafted_under_simulate(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        tracer, reg = Tracer(), MetricsRegistry()
        ex = SimulationExecutor(task, n_workers=2,
                                telemetry=Telemetry(tracer=tracer,
                                                    metrics=reg))
        try:
            ex.evaluate_batch(task.space.sample(rng, 6), kind="actor")
        finally:
            ex.close()
        sim = tracer.find("simulate")[0]
        workers = [c for c in sim.children if c.name == "worker-evaluate"]
        assert len(workers) == 6
        assert all(c.attrs["pid"] > 0 for c in workers)
        assert all(c.attrs["seq"] >= 1 for c in workers)
        assert reg.counter_value("worker_sims_total") == 6

    def test_capture_disabled_without_listeners(self, rng):
        task = ConstrainedSphere(d=4, seed=0)
        ex = SimulationExecutor(task, n_workers=2)
        assert not ex._capture
        try:
            out = ex.evaluate_batch(task.space.sample(rng, 4))
        finally:
            ex.close()
        assert out.shape == (4, task.m + 1)

    def test_resilient_pool_captures_attempt_spans(self, rng):
        from repro.core.config import ResilienceConfig

        task = ConstrainedSphere(d=4, seed=0)
        tracer = Tracer()
        ex = SimulationExecutor(
            task, n_workers=2, telemetry=Telemetry(tracer=tracer),
            resilience=ResilienceConfig(max_retries=1))
        try:
            ex.evaluate_batch(task.space.sample(rng, 4), kind="actor")
        finally:
            ex.close()
        workers = tracer.find("worker-evaluate")
        assert len(workers) == 4
        assert all(w.attrs.get("resilient") for w in workers)
        attempts = tracer.find("sim-attempt")
        assert len(attempts) == 4  # healthy sims: exactly one attempt each
        assert all(a.attrs["attempt"] == 0 for a in attempts)
