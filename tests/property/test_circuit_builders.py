"""Property tests: circuit builders accept the entire design space."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import LDORegulator, ThreeStageTIA, TwoStageOTA
from repro.circuits.ldo import build_ldo
from repro.circuits.ota import build_ota
from repro.circuits.tia import build_tia
from repro.spice.lint import lint_circuit

OTA = TwoStageOTA()
TIA = ThreeStageTIA()
LDO = LDORegulator()

unit_vectors = st.integers(0, 2**31 - 1)


def params_for(task, seed):
    rng = np.random.default_rng(seed)
    return task.space.denormalize(task.space.sample(rng, 1)[0])


@given(unit_vectors)
@settings(max_examples=30, deadline=None)
def test_ota_builder_total(seed):
    """Any in-range sizing builds a structurally sound OTA netlist."""
    ckt = build_ota(params_for(OTA, seed))
    assert lint_circuit(ckt) == []
    assert ckt.n_nodes == 8
    assert len(ckt.elements) == 14


@given(unit_vectors)
@settings(max_examples=30, deadline=None)
def test_tia_builder_total(seed):
    ckt = build_tia(params_for(TIA, seed))
    assert lint_circuit(ckt) == []
    # three NMOS drivers + three PMOS loads + bias pair present
    for name in ("M1", "M2", "M3", "MP1", "MP2", "MP3", "MPB", "MNB"):
        assert name in ckt


@given(unit_vectors)
@settings(max_examples=30, deadline=None)
def test_ldo_builder_total(seed):
    ckt = build_ldo(params_for(LDO, seed))
    assert lint_circuit(ckt) == []
    assert "MP" in ckt and "Vref" in ckt


@given(unit_vectors)
@settings(max_examples=20, deadline=None)
def test_multipliers_respected(seed):
    params = params_for(OTA, seed)
    ckt = build_ota(params)
    assert ckt["M5"].m == int(params["N1"])
    assert ckt["M6"].m == int(params["N2"])
    assert ckt["M7"].m == int(params["N3"])


@given(unit_vectors)
@settings(max_examples=20, deadline=None)
def test_geometry_in_si_units(seed):
    params = params_for(OTA, seed)
    ckt = build_ota(params)
    m1 = ckt["M1a"]
    assert m1.w == params["W1"] * 1e-6
    assert m1.l == params["L1"] * 1e-6
