"""Property-based tests for the FoM function (Eq. 2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fom import FigureOfMerit
from repro.core.problem import SizingTask, Spec, Target
from repro.core.space import DesignSpace, Parameter


class _Task(SizingTask):
    def __init__(self):
        self.name = "prop"
        self.space = DesignSpace([Parameter("x", 0, 1)])
        self.target = Target("t", weight=1.0)
        self.specs = [Spec("a", ">", 10.0), Spec("b", "<", 4.0, weight=2.0)]

    def simulate(self, u):  # pragma: no cover
        return {}


FOM = FigureOfMerit(_Task())

metric_vectors = arrays(
    np.float64, (3,),
    elements=st.floats(-100.0, 100.0, allow_nan=False),
)


@given(metric_vectors)
def test_penalty_bounded_by_m(mv):
    """g - w0*f0 is in [0, m]: each constraint contributes at most 1."""
    g = FOM(mv)
    penalty = g - mv[0]
    assert -1e-9 <= penalty <= 2.0 + 1e-9


@given(metric_vectors)
def test_feasible_iff_zero_penalty(mv):
    g = FOM(mv)
    penalty = g - mv[0]
    if FOM.is_feasible(mv):
        assert penalty <= 1e-12
    else:
        assert penalty > 0.0


@given(metric_vectors, st.floats(0.1, 10.0))
def test_improving_target_improves_fom(mv, delta):
    """Lowering f0 with constraints fixed strictly lowers g."""
    better = mv.copy()
    better[0] -= delta
    assert FOM(better) < FOM(mv)


@given(metric_vectors, st.floats(0.0, 50.0))
def test_monotone_in_gt_constraint(mv, delta):
    """Raising a '>' metric never increases the FoM."""
    better = mv.copy()
    better[1] += delta
    assert FOM(better) <= FOM(mv) + 1e-12


@given(metric_vectors, st.floats(0.0, 50.0))
def test_monotone_in_lt_constraint(mv, delta):
    """Lowering a '<' metric never increases the FoM."""
    better = mv.copy()
    better[2] -= delta
    assert FOM(better) <= FOM(mv) + 1e-12


@given(arrays(np.float64, (7, 3),
              elements=st.floats(-50.0, 50.0, allow_nan=False)))
def test_batch_consistent_with_scalar(batch):
    gb = FOM(batch)
    for k in range(batch.shape[0]):
        assert abs(gb[k] - FOM(batch[k])) < 1e-12


@given(metric_vectors)
@settings(max_examples=50)
def test_gradient_is_descent_direction(mv):
    """A small step against the gradient never increases g (convexity of
    each term along coordinate directions)."""
    grad = FOM.gradient(mv)
    step = 1e-6
    moved = mv - step * grad
    assert FOM(moved) <= FOM(mv) + 1e-10
