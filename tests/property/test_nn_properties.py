"""Property-based tests for the neural-network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, Adam, mse_loss


@st.composite
def architectures(draw):
    n_hidden = draw(st.integers(0, 3))
    sizes = [draw(st.integers(1, 6))]
    sizes += [draw(st.integers(2, 12)) for _ in range(n_hidden)]
    sizes.append(draw(st.integers(1, 4)))
    activation = draw(st.sampled_from(["tanh", "relu", "sigmoid"]))
    return sizes, activation


@given(architectures(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_forward_shape_for_any_architecture(arch, seed):
    sizes, activation = arch
    net = MLP(sizes, activation=activation, seed=seed)
    x = np.random.default_rng(seed).normal(size=(5, sizes[0]))
    out = net.forward(x)
    assert out.shape == (5, sizes[-1])
    assert np.all(np.isfinite(out))


@given(architectures(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_gradcheck_any_architecture(arch, seed):
    """Backprop matches finite differences for arbitrary architectures."""
    sizes, activation = arch
    net = MLP(sizes, activation=activation, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=(3, sizes[0]))
    target = rng.normal(size=(3, sizes[-1]))
    pred = net.forward(x)
    _, dloss = mse_loss(pred, target)
    net.zero_grad()
    net.backward(dloss)
    # check one parameter tensor against finite differences
    p = net.parameters()[0]
    flat = p.value.ravel()
    gflat = p.grad.ravel()
    idx = rng.integers(0, flat.size)
    eps = 1e-6
    orig = flat[idx]
    flat[idx] = orig + eps
    hi, _ = mse_loss(net.forward(x), target)
    flat[idx] = orig - eps
    lo, _ = mse_loss(net.forward(x), target)
    flat[idx] = orig
    fd = (hi - lo) / (2 * eps)
    assert abs(gflat[idx] - fd) < 1e-4 * max(1.0, abs(fd))


@given(st.integers(0, 2**31 - 1), st.floats(1e-4, 1e-1))
@settings(max_examples=20, deadline=None)
def test_adam_reduces_loss_on_regression(seed, lr):
    rng = np.random.default_rng(seed)
    net = MLP([3, 16, 1], activation="tanh", seed=seed)
    opt = Adam(net.parameters(), lr=lr)
    x = rng.uniform(-1, 1, size=(64, 3))
    y = x[:, :1] * 0.5
    first, _ = mse_loss(net.forward(x), y)
    for _ in range(60):
        pred = net.forward(x)
        _, d = mse_loss(pred, y)
        net.zero_grad()
        net.backward(d)
        opt.step()
    last, _ = mse_loss(net.forward(x), y)
    assert last <= first + 1e-12


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_weight_roundtrip_preserves_function(seed):
    rng = np.random.default_rng(seed)
    net = MLP([4, 8, 2], seed=seed)
    x = rng.normal(size=(6, 4))
    before = net.forward(x)
    clone = MLP([4, 8, 2], seed=seed + 1)
    clone.set_weights(net.get_weights())
    np.testing.assert_allclose(clone.forward(x), before, atol=1e-12)
