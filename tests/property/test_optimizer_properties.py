"""Property-based tests for optimizer data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.population import EliteSet, TotalDesignSet
from repro.core.pseudo import pseudo_sample_batch
from repro.core.result import EvaluationRecord, OptimizationResult

fom_lists = st.lists(st.floats(-10.0, 10.0, allow_nan=False),
                     min_size=1, max_size=40)


@given(fom_lists, st.integers(1, 10))
def test_elite_set_is_exactly_best_k(foms, n_es):
    total = TotalDesignSet(d=2, n_metrics=1)
    for g in foms:
        total.add(np.zeros(2), np.zeros(1), g)
    elite = EliteSet(total, n_es=n_es)
    idx = elite.indices()
    assert len(idx) == min(n_es, len(foms))
    chosen = sorted(np.array(foms)[idx])
    best = sorted(foms)[: len(idx)]
    np.testing.assert_allclose(chosen, best)


@given(fom_lists)
def test_elite_bounds_contain_best_design(foms):
    rng = np.random.default_rng(0)
    total = TotalDesignSet(d=3, n_metrics=1)
    for g in foms:
        total.add(rng.uniform(size=3), np.zeros(1), g)
    elite = EliteSet(total, n_es=5)
    lb, ub = elite.bounds()
    x_best, _ = elite.best()
    assert np.all(x_best >= lb - 1e-12)
    assert np.all(x_best <= ub + 1e-12)


@given(st.integers(1, 30), st.integers(1, 64), st.integers(0, 2**31 - 1))
@settings(max_examples=30)
def test_pseudo_samples_always_consistent(n_designs, batch, seed):
    rng = np.random.default_rng(seed)
    total = TotalDesignSet(d=3, n_metrics=2)
    for _ in range(n_designs):
        total.add(rng.uniform(size=3), rng.uniform(size=2), rng.uniform())
    x, y = pseudo_sample_batch(total, batch, rng)
    designs = total.designs
    metrics = total.metrics
    for row, tgt in zip(x, y):
        xj = row[:3] + row[3:]
        dists = np.linalg.norm(designs - xj, axis=1)
        j = int(np.argmin(dists))
        assert dists[j] < 1e-9
        np.testing.assert_allclose(tgt, metrics[j])


@given(fom_lists, st.floats(-10.0, 10.0, allow_nan=False))
def test_best_fom_trace_monotone(foms, init_best):
    records = [
        EvaluationRecord(index=i, x=np.zeros(1), metrics=np.zeros(1), fom=g)
        for i, g in enumerate(foms)
    ]
    res = OptimizationResult("t", "m", records=records,
                             init_best_fom=init_best)
    trace = res.best_fom_trace()
    assert len(trace) == len(foms) + 1
    assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))
    assert trace[-1] == min([init_best] + foms)
