"""Property test: random linear circuits survive the SPICE round-trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import Circuit, operating_point, parse_netlist


@st.composite
def random_ladders(draw):
    """A random resistive ladder with a couple of sources — always solvable."""
    n_stages = draw(st.integers(1, 6))
    v_in = draw(st.floats(-10.0, 10.0, allow_nan=False))
    resistances = [draw(st.floats(1.0, 1e6)) for _ in range(2 * n_stages)]
    i_leak = draw(st.floats(-1e-3, 1e-3, allow_nan=False))
    return n_stages, v_in, resistances, i_leak


def build(spec) -> Circuit:
    n_stages, v_in, resistances, i_leak = spec
    ckt = Circuit("ladder")
    ckt.add_vsource("V1", "n0", "0", v_in)
    for k in range(n_stages):
        ckt.add_resistor(f"Rs{k}", f"n{k}", f"n{k + 1}",
                         resistances[2 * k])
        ckt.add_resistor(f"Rp{k}", f"n{k + 1}", "0",
                         resistances[2 * k + 1])
    ckt.add_isource("I1", "0", f"n{n_stages}", i_leak)
    return ckt


@given(random_ladders())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_operating_point(spec):
    original = build(spec)
    recovered = parse_netlist(original.to_spice())
    op_a = operating_point(original)
    op_b = operating_point(recovered)
    for name in original.node_names():
        assert abs(op_a.v(name) - op_b.v(name)) < 1e-9 * max(
            1.0, abs(op_a.v(name)))


@given(random_ladders())
@settings(max_examples=25, deadline=None)
def test_roundtrip_is_stable(spec):
    """to_spice(parse(to_spice(c))) == to_spice(parse(...)) — a fixpoint
    after one round."""
    original = build(spec)
    once = parse_netlist(original.to_spice())
    twice = parse_netlist(once.to_spice())
    assert once.to_spice() == twice.to_spice()
