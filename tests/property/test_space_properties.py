"""Property-based tests for DesignSpace normalization."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.space import DesignSpace, Parameter


@st.composite
def spaces(draw):
    n = draw(st.integers(1, 8))
    params = []
    for i in range(n):
        lo = draw(st.floats(-100.0, 99.0, allow_nan=False))
        width = draw(st.floats(0.5, 100.0, allow_nan=False))
        integer = draw(st.booleans()) and width >= 3.0
        params.append(Parameter(f"p{i}", lo, lo + width, integer=integer))
    return DesignSpace(params)


@given(spaces(), st.integers(0, 2**31 - 1))
def test_samples_in_unit_cube(space, seed):
    u = space.sample(np.random.default_rng(seed), 16)
    assert np.all(u >= 0.0) and np.all(u <= 1.0)


@given(spaces(), st.integers(0, 2**31 - 1))
def test_denormalized_values_within_bounds(space, seed):
    u = space.sample(np.random.default_rng(seed), 8)
    for row in u:
        vals = space.denormalize(row)
        for p in space:
            assert p.low - 1e-9 <= vals[p.name] <= p.high + 1e-9


@given(spaces(), st.integers(0, 2**31 - 1))
def test_integer_params_are_integers(space, seed):
    u = space.sample(np.random.default_rng(seed), 8)
    for row in u:
        vals = space.denormalize(row)
        for p in space:
            if p.integer:
                assert float(vals[p.name]).is_integer()


@given(spaces(), st.integers(0, 2**31 - 1))
def test_roundtrip_real_parameters(space, seed):
    u = space.sample(np.random.default_rng(seed), 4)
    for row in u:
        vals = space.denormalize(row)
        u2 = space.normalize(vals)
        for j, p in enumerate(space):
            if not p.integer:
                assert abs(u2[j] - row[j]) < 1e-9


@given(spaces(), st.integers(0, 2**31 - 1))
def test_denormalize_array_agrees_with_dict(space, seed):
    u = space.sample(np.random.default_rng(seed), 6)
    arr = space.denormalize_array(u)
    for k, row in enumerate(u):
        vals = space.denormalize(row)
        np.testing.assert_allclose(
            arr[k], [vals[p.name] for p in space], atol=1e-12)
