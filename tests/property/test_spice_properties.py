"""Property-based tests for circuit-theory invariants of the simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import Circuit, ac_analysis, operating_point

resistances = st.floats(1.0, 1e6, allow_nan=False)
voltages = st.floats(-10.0, 10.0, allow_nan=False)


@given(resistances, resistances, voltages)
@settings(max_examples=60, deadline=None)
def test_divider_formula(r1, r2, v):
    ckt = Circuit()
    ckt.add_vsource("V1", "in", "0", v)
    ckt.add_resistor("R1", "in", "out", r1)
    ckt.add_resistor("R2", "out", "0", r2)
    op = operating_point(ckt)
    assert op.v("out") == np.float64(v * r2 / (r1 + r2)).item() or \
        abs(op.v("out") - v * r2 / (r1 + r2)) < 1e-6 * max(1.0, abs(v))


@given(resistances, voltages, voltages)
@settings(max_examples=60, deadline=None)
def test_linear_superposition(r, v1, v2):
    """Response to v1+v2 equals sum of individual responses."""

    def solve(va, vb):
        ckt = Circuit()
        ckt.add_vsource("Va", "a", "0", va)
        ckt.add_vsource("Vb", "b", "0", vb)
        ckt.add_resistor("R1", "a", "out", r)
        ckt.add_resistor("R2", "b", "out", 2 * r)
        ckt.add_resistor("R3", "out", "0", 3 * r)
        return operating_point(ckt).v("out")

    combined = solve(v1, v2)
    sum_parts = solve(v1, 0.0) + solve(0.0, v2)
    assert abs(combined - sum_parts) < 1e-6 * max(1.0, abs(combined))


@given(resistances, st.floats(1e-12, 1e-6, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_rc_ac_magnitude_bounded_by_one(r, c):
    """A passive RC divider can never exhibit gain."""
    ckt = Circuit()
    ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    freqs = np.logspace(1, 9, 20)
    h = ac_analysis(ckt, freqs).v("out")
    assert np.all(np.abs(h) <= 1.0 + 1e-9)


@given(resistances, resistances)
@settings(max_examples=40, deadline=None)
def test_kcl_at_every_node(r1, r2):
    """Currents into the middle node of a T network sum to zero."""
    ckt = Circuit()
    ckt.add_vsource("V1", "a", "0", 5.0)
    ckt.add_resistor("R1", "a", "mid", r1)
    ckt.add_resistor("R2", "mid", "0", r2)
    ckt.add_resistor("R3", "mid", "0", 2 * r2)
    op = operating_point(ckt)
    i_in = (op.v("a") - op.v("mid")) / r1
    i_out = op.v("mid") / r2 + op.v("mid") / (2 * r2)
    assert abs(i_in - i_out) < 1e-9 * max(1.0, abs(i_in))


@given(st.floats(0.3, 1.7), st.floats(1.0, 100.0))
@settings(max_examples=30, deadline=None)
def test_mosfet_op_respects_supply_rails(vg, wl):
    """All node voltages of a resistively-loaded NMOS stage stay within
    the supply rails."""
    from repro.spice import NMOS_180

    ckt = Circuit()
    ckt.add_vsource("Vdd", "vdd", "0", 1.8)
    ckt.add_vsource("Vg", "g", "0", vg)
    ckt.add_resistor("RL", "vdd", "d", 10e3)
    ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180,
                   w=wl * 1e-6, l=1e-6)
    op = operating_point(ckt)
    assert -1e-6 <= op.v("d") <= 1.8 + 1e-6
