"""Unit tests for the atomic checkpoint file format."""

import json

import numpy as np
import pytest

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)


class TestRoundTrip:
    def test_header_and_arrays_survive(self, tmp_path):
        header = {"kind": "test", "round": 3, "best": float("inf")}
        arrays = {"a/x": np.arange(6.0).reshape(2, 3),
                  "b": np.array([True, False])}
        path = save_checkpoint(tmp_path / "ck.npz", header, arrays)
        back_header, back_arrays = load_checkpoint(path)
        assert back_header["kind"] == "test"
        assert back_header["round"] == 3
        assert back_header["best"] == float("inf")
        assert back_header["checkpoint_version"] == CHECKPOINT_VERSION
        np.testing.assert_array_equal(back_arrays["a/x"], arrays["a/x"])
        np.testing.assert_array_equal(back_arrays["b"], arrays["b"])

    def test_suffix_appended(self, tmp_path):
        path = save_checkpoint(tmp_path / "ck", {"kind": "t"}, {})
        assert path.name == "ck.npz" and path.exists()

    def test_string_arrays_stay_pickle_free(self, tmp_path):
        arrays = {"kinds": np.array(["init", "actor"], dtype=np.str_)}
        path = save_checkpoint(tmp_path / "ck.npz", {"kind": "t"}, arrays)
        _, back = load_checkpoint(path)  # load_checkpoint forbids pickle
        assert list(back["kinds"]) == ["init", "actor"]


class TestSafety:
    def test_object_dtype_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="pickle-free"):
            save_checkpoint(tmp_path / "ck.npz", {"kind": "t"},
                            {"bad": np.array([{"a": 1}], dtype=object)})

    def test_reserved_header_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(tmp_path / "ck.npz", {"kind": "t"},
                            {"__header__": np.zeros(1)})

    def test_failed_write_preserves_previous_checkpoint(self, tmp_path):
        path = save_checkpoint(tmp_path / "ck.npz", {"kind": "good"},
                               {"x": np.ones(3)})
        # A non-serializable header fails before the atomic rename ...
        with pytest.raises(TypeError):
            save_checkpoint(path, {"bad": object()}, {})
        # ... so the original snapshot survives and no temp files linger.
        header, arrays = load_checkpoint(path)
        assert header["kind"] == "good"
        np.testing.assert_array_equal(arrays["x"], np.ones(3))
        assert list(tmp_path.glob("*.tmp-*")) == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.npz"
        header = json.dumps({"checkpoint_version": 999})
        np.savez_compressed(path, __header__=np.array(header))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "ck.npz"
        np.savez_compressed(path, x=np.zeros(2))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, tmp_path):
        path = save_checkpoint(tmp_path / "deep" / "dir" / "ck.npz",
                               {"kind": "t"}, {})
        assert path.exists()
