"""Acceptance test: a 20%-fault run finishes its budget with correct telemetry."""

import numpy as np

from repro.core.config import MAOptConfig, ResilienceConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere
from repro.obs import MetricsRegistry, RunLogger, Telemetry
from repro.resilience.faults import FaultyTask
from repro.resilience.policy import penalty_metrics

MAX_RETRIES = 2
KINDS = ("init", "actor", "ns")


def run_faulty(n_sims=15, n_init=10):
    inner = ConstrainedSphere(d=4, seed=0)
    # seed=5 is chosen so the 20% fault rate provably exercises both
    # retries-then-success and full quarantine within this small budget.
    task = FaultyTask(inner, error_rate=0.1, nan_rate=0.1, seed=5)
    cfg = MAOptConfig(seed=0, critic_steps=8, actor_steps=4, batch_size=8,
                      n_elite=5, hidden=(8, 8),
                      resilience=ResilienceConfig(max_retries=MAX_RETRIES))
    reg, log = MetricsRegistry(), RunLogger()
    opt = MAOptimizer(task, cfg,
                      telemetry=Telemetry(metrics=reg, run_logger=log))
    rng = np.random.default_rng(123)
    x_init = inner.space.sample(rng, n_init)
    result = opt.run(n_sims=n_sims, x_init=x_init)
    return task, x_init, result, reg, log


class TestGracefulDegradation:
    def test_full_budget_with_matching_telemetry(self):
        task, x_init, result, reg, log = run_faulty()

        # 1. The run completed its whole budget without raising.
        assert len(result.records) == 15

        # 2. Every evaluated design (init set + records) has a replayable
        #    fault schedule; telemetry must match that ground truth exactly.
        evaluated = [("init", x) for x in x_init] + [
            (r.kind, r.x) for r in result.records]
        exp_retries = {k: 0 for k in KINDS}
        exp_failures = {k: 0 for k in KINDS}
        quarantined_xs = []
        for kind, x in evaluated:
            retries, failed = task.planned_outcome(x, MAX_RETRIES)
            exp_retries[kind] += retries
            exp_failures[kind] += int(failed)
            if failed:
                quarantined_xs.append(x)
        # the injection rates guarantee the drill actually exercised faults
        assert sum(exp_retries.values()) > 0
        assert sum(exp_failures.values()) > 0

        for kind in KINDS:
            assert reg.counter_value("sim_retries_total",
                                     kind=kind) == exp_retries[kind]
            assert reg.counter_value("sim_failures_total",
                                     kind=kind) == exp_failures[kind]
        assert len(log.events("sim_failed")) == sum(exp_failures.values())

        # 3. Quarantined designs surface as infeasible penalty records.
        pm = penalty_metrics(task)
        for rec in result.records:
            _, failed = task.planned_outcome(rec.x, MAX_RETRIES)
            if failed:
                assert not rec.feasible
                np.testing.assert_array_equal(rec.metrics, pm)
            assert np.all(np.isfinite(rec.metrics))

    def test_quarantine_never_poisons_dataset(self):
        _, _, result, _, _ = run_faulty()
        foms = np.array([r.fom for r in result.records])
        assert np.all(np.isfinite(foms))
