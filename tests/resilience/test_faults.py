"""Unit tests for the deterministic fault-injection wrapper."""

import pickle

import numpy as np
import pytest

from repro.core.config import ResilienceConfig
from repro.core.synthetic import ConstrainedSphere
from repro.resilience.faults import FaultyTask, InjectedFault
from repro.resilience.policy import evaluate_design


class TestDeterminism:
    def test_draws_are_pure(self, sphere_task, rng):
        task = FaultyTask(sphere_task, error_rate=0.3, nan_rate=0.3, seed=7)
        u = rng.uniform(size=sphere_task.d)
        assert task.fault_draws(u, 0) == task.fault_draws(u, 0)
        assert task.fault_draws(u, 0) == task.fault_draws(u.copy(), 0)

    def test_draws_vary_with_attempt_and_seed(self, sphere_task, rng):
        us = rng.uniform(size=(200, sphere_task.d))
        t1 = FaultyTask(sphere_task, error_rate=0.5, seed=1)
        t2 = FaultyTask(sphere_task, error_rate=0.5, seed=2)
        by_attempt = sum(t1.fault_draws(u, 0) != t1.fault_draws(u, 1)
                         for u in us)
        by_seed = sum(t1.fault_draws(u, 0) != t2.fault_draws(u, 0)
                      for u in us)
        assert by_attempt > 50 and by_seed > 50

    def test_rates_approximately_honoured(self, sphere_task, rng):
        task = FaultyTask(sphere_task, error_rate=0.25, seed=0)
        us = rng.uniform(size=(800, sphere_task.d))
        hits = sum(task.fault_draws(u)["error"] for u in us)
        assert 0.18 < hits / 800 < 0.32

    def test_picklable(self, sphere_task):
        task = FaultyTask(sphere_task, error_rate=0.2, seed=3)
        clone = pickle.loads(pickle.dumps(task))
        u = np.full(sphere_task.d, 0.3)
        assert clone.fault_draws(u, 1) == task.fault_draws(u, 1)


class TestInjection:
    def test_error_raises(self, sphere_task, rng):
        task = FaultyTask(sphere_task, error_rate=1.0, seed=0)
        with pytest.raises(InjectedFault):
            task.evaluate(rng.uniform(size=sphere_task.d))

    def test_nan_poisons_metrics(self, sphere_task, rng):
        task = FaultyTask(sphere_task, nan_rate=1.0, seed=0)
        out = task.evaluate(rng.uniform(size=sphere_task.d))
        assert np.all(np.isnan(out))

    def test_clean_passthrough(self, sphere_task, rng):
        task = FaultyTask(sphere_task, seed=0)
        u = rng.uniform(size=sphere_task.d)
        np.testing.assert_allclose(task.evaluate(u),
                                   sphere_task.evaluate(u))

    def test_rate_validation(self, sphere_task):
        with pytest.raises(ValueError):
            FaultyTask(sphere_task, error_rate=1.5)
        with pytest.raises(ValueError):
            FaultyTask(sphere_task, slow_s=-1.0)

    def test_mirrors_inner_interface(self, sphere_task):
        task = FaultyTask(sphere_task, seed=0)
        assert task.name == sphere_task.name
        assert task.d == sphere_task.d
        assert task.m == sphere_task.m


class TestPlannedOutcome:
    """planned_outcome must replay exactly what evaluate_design does."""

    @pytest.mark.parametrize("max_retries", [0, 1, 3])
    def test_matches_policy_loop(self, sphere_task, rng, max_retries):
        task = FaultyTask(sphere_task, error_rate=0.3, nan_rate=0.2, seed=5)
        policy = ResilienceConfig(max_retries=max_retries)
        for u in rng.uniform(size=(40, sphere_task.d)):
            retries, quarantined = task.planned_outcome(u, max_retries)
            out = evaluate_design(task, u, policy)
            assert out.retries == retries
            assert out.failed == quarantined
