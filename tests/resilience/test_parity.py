"""Serial vs pool parity: the failure policy must not depend on the path."""

import numpy as np
import pytest

from repro.core.config import ResilienceConfig
from repro.core.parallel import SimulationExecutor
from repro.core.synthetic import ConstrainedSphere
from repro.obs import MetricsRegistry, Telemetry
from repro.resilience.faults import FaultyTask


def faulty_setup():
    inner = ConstrainedSphere(d=4, seed=0)
    # seed=1 yields both retried-then-recovered and quarantined designs
    # for this design batch, so the parity check covers every path.
    task = FaultyTask(inner, error_rate=0.25, nan_rate=0.15, seed=1)
    policy = ResilienceConfig(max_retries=2)
    designs = inner.space.sample(np.random.default_rng(9), 8)
    return task, policy, designs


def run_path(task, policy, designs, n_workers):
    reg = MetricsRegistry()
    with SimulationExecutor(task, n_workers=n_workers,
                            telemetry=Telemetry(metrics=reg),
                            resilience=policy) as ex:
        metrics = ex.evaluate_batch(designs, kind="actor")
        outcomes = list(ex.last_outcomes)
    return metrics, outcomes, reg


class TestSerialGroundTruth:
    def test_matches_planned_outcomes(self):
        task, policy, designs = faulty_setup()
        metrics, outcomes, reg = run_path(task, policy, designs, n_workers=0)
        for u, out in zip(designs, outcomes):
            retries, failed = task.planned_outcome(u, policy.max_retries)
            assert out.retries == retries
            assert out.failed == failed
        exp_retries = sum(o.retries for o in outcomes)
        exp_failures = sum(o.failed for o in outcomes)
        assert exp_retries > 0 and exp_failures > 0  # the drill has teeth
        assert reg.counter_value("sim_retries_total",
                                 kind="actor") == exp_retries
        assert reg.counter_value("sim_failures_total",
                                 kind="actor") == exp_failures


@pytest.mark.slow
class TestPoolParity:
    def test_identical_records_and_retries(self):
        task, policy, designs = faulty_setup()
        m_serial, o_serial, reg_s = run_path(task, policy, designs, 0)
        m_pool, o_pool, reg_p = run_path(task, policy, designs, 2)
        np.testing.assert_array_equal(m_serial, m_pool)
        assert [o.retries for o in o_serial] == [o.retries for o in o_pool]
        assert [o.failed for o in o_serial] == [o.failed for o in o_pool]
        assert [o.reason for o in o_serial] == [o.reason for o in o_pool]
        for name in ("sim_retries_total", "sim_failures_total"):
            assert (reg_s.counter_value(name, kind="actor")
                    == reg_p.counter_value(name, kind="actor"))
