"""Unit tests for the failure policy (retry / backoff / quarantine)."""

import numpy as np
import pytest

from repro.core.config import ResilienceConfig
from repro.core.synthetic import ConstrainedSphere
from repro.resilience.policy import (
    SimulationFailure,
    backoff_delay,
    evaluate_design,
    penalty_metrics,
)


class FlakyTask:
    """Fails the first ``n_failures`` evaluate() calls, then succeeds."""

    def __init__(self, inner, n_failures):
        self.inner = inner
        self.n_failures = n_failures
        self.calls = 0
        self.target = inner.target
        self.specs = inner.specs
        self.m = inner.m

    def evaluate(self, u):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError(f"boom #{self.calls}")
        return self.inner.evaluate(u)


class NaNTask:
    """Always returns all-NaN metrics."""

    def __init__(self, inner):
        self.inner = inner
        self.target = inner.target
        self.specs = inner.specs
        self.m = inner.m

    def evaluate(self, u):
        return np.full(self.m + 1, np.nan)


class TestRetryLoop:
    def test_success_first_try(self, sphere_task):
        policy = ResilienceConfig(max_retries=3)
        u = np.full(sphere_task.d, 0.5)
        out = evaluate_design(sphere_task, u, policy)
        assert not out.failed and out.retries == 0
        np.testing.assert_allclose(out.metrics, sphere_task.evaluate(u))

    def test_retry_until_success(self, sphere_task):
        task = FlakyTask(sphere_task, n_failures=2)
        policy = ResilienceConfig(max_retries=3)
        out = evaluate_design(task, np.full(sphere_task.d, 0.5), policy)
        assert not out.failed
        assert out.retries == 2
        assert task.calls == 3

    def test_quarantine_after_budget(self, sphere_task):
        task = FlakyTask(sphere_task, n_failures=10)
        policy = ResilienceConfig(max_retries=2)
        out = evaluate_design(task, np.full(sphere_task.d, 0.5), policy)
        assert out.failed and out.retries == 2
        assert out.reason == "exception"
        assert "boom" in out.error
        np.testing.assert_allclose(out.metrics, penalty_metrics(sphere_task))

    def test_nonfinite_quarantined(self, sphere_task):
        task = NaNTask(sphere_task)
        policy = ResilienceConfig(max_retries=1)
        out = evaluate_design(task, np.full(sphere_task.d, 0.5), policy)
        assert out.failed and out.reason == "nonfinite"
        assert np.all(np.isfinite(out.metrics))

    def test_nonfinite_passthrough_when_disabled(self, sphere_task):
        task = NaNTask(sphere_task)
        policy = ResilienceConfig(quarantine_nonfinite=False)
        out = evaluate_design(task, np.full(sphere_task.d, 0.5), policy)
        assert not out.failed
        assert np.all(np.isnan(out.metrics))

    def test_raises_when_quarantine_disabled(self, sphere_task):
        task = FlakyTask(sphere_task, n_failures=10)
        policy = ResilienceConfig(max_retries=1, quarantine_failures=False)
        with pytest.raises(SimulationFailure):
            evaluate_design(task, np.full(sphere_task.d, 0.5), policy)

    def test_start_attempt_charges_budget(self, sphere_task):
        task = FlakyTask(sphere_task, n_failures=10)
        policy = ResilienceConfig(max_retries=2)
        out = evaluate_design(task, np.full(sphere_task.d, 0.5), policy,
                              start_attempt=2)
        # Only attempt 2 remains: one call, no further retries.
        assert out.failed and task.calls == 1 and out.retries == 0


class TestPenaltyMetrics:
    def test_infeasible_and_finite(self, sphere_task):
        pm = penalty_metrics(sphere_task)
        assert pm.shape == (sphere_task.m + 1,)
        assert np.all(np.isfinite(pm))
        assert not sphere_task.is_feasible(pm)


class TestBackoff:
    def test_zero_base_is_free(self):
        policy = ResilienceConfig(max_retries=2)
        assert backoff_delay(policy, np.zeros(3), 0) == 0.0

    def test_deterministic_and_growing(self):
        policy = ResilienceConfig(max_retries=4, backoff_base_s=0.1,
                                  backoff_factor=2.0, backoff_jitter=0.5)
        u = np.array([0.1, 0.7])
        d0 = backoff_delay(policy, u, 0)
        d2 = backoff_delay(policy, u, 2)
        assert d0 == backoff_delay(policy, u, 0)  # pure function
        assert 0.1 <= d0 <= 0.1 * 1.5
        assert 0.4 <= d2 <= 0.4 * 1.5  # exponential growth
        # different designs draw different jitter
        assert d0 != backoff_delay(policy, u + 0.01, 0)


class TestConfigValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(sim_timeout_s=0.0)

    def test_bad_checkpoint_every_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(checkpoint_every=-2)
