"""Bit-exact checkpoint/resume tests for both optimizer families."""

import numpy as np
import pytest

from repro.baselines import ParticleSwarm, RandomSearch
from repro.core.config import MAOptConfig, ResilienceConfig
from repro.core.ma_opt import MAOptimizer
from repro.core.synthetic import ConstrainedSphere


def small_cfg(**overrides) -> MAOptConfig:
    base = dict(seed=0, critic_steps=8, actor_steps=4, batch_size=8,
                n_elite=5, hidden=(8, 8))
    base.update(overrides)
    return MAOptConfig(**base)


def assert_same_records(a, b):
    assert len(a) == len(b)
    for r1, r2 in zip(a, b):
        np.testing.assert_array_equal(r1.x, r2.x)
        np.testing.assert_array_equal(r1.metrics, r2.metrics)
        assert r1.fom == r2.fom
        assert r1.kind == r2.kind
        assert r1.owner == r2.owner
        assert r1.feasible == r2.feasible


class TestMAOptResume:
    def test_bit_exact_resume(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        ref = MAOptimizer(task, small_cfg()).run(n_sims=12, n_init=8)

        interrupted = MAOptimizer(task, small_cfg())
        interrupted.run(n_sims=6, n_init=8)
        path = interrupted.save_checkpoint(tmp_path / "ck.npz")

        resumed = MAOptimizer.restore(path, task)
        res = resumed.run(n_sims=12)

        assert_same_records(ref.records, res.records)
        assert ref.init_best_fom == res.init_best_fom
        assert ref.best_fom == res.best_fom

    def test_checkpoint_every_writes_during_run(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        path = tmp_path / "auto.npz"
        cfg = small_cfg(resilience=ResilienceConfig(
            checkpoint_every=1, checkpoint_path=str(path)))
        opt = MAOptimizer(task, cfg)
        result = opt.run(n_sims=8, n_init=8)
        assert path.exists()
        # The final snapshot holds the completed run's full record stream.
        restored = MAOptimizer.restore(path, task)
        assert_same_records(result.records, restored.records)

    def test_restore_rejects_other_task(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        opt = MAOptimizer(task, small_cfg())
        opt.run(n_sims=4, n_init=6)
        path = opt.save_checkpoint(tmp_path / "ck.npz")
        with pytest.raises(ValueError, match="task"):
            MAOptimizer.restore(path, ConstrainedSphere(d=6, seed=0))

    def test_restore_rejects_baseline_checkpoint(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        rs = RandomSearch(task, seed=1)
        rs.run(n_sims=3, n_init=4)
        path = rs.save_checkpoint(tmp_path / "rs.npz")
        with pytest.raises(ValueError):
            MAOptimizer.restore(path, task)


class TestBaselineResume:
    def test_bit_exact_resume(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        ref = RandomSearch(task, seed=7).run(n_sims=12, n_init=8)

        interrupted = RandomSearch(task, seed=7)
        interrupted.run(n_sims=5, n_init=8)
        path = interrupted.save_checkpoint(tmp_path / "ck.npz")

        resumed = RandomSearch.restore(path, task)
        res = resumed.run(n_sims=12, n_init=8)

        assert_same_records(ref.records, res.records)
        assert ref.init_best_fom == res.init_best_fom

    def test_restore_rejects_other_method(self, tmp_path):
        task = ConstrainedSphere(d=4, seed=0)
        rs = RandomSearch(task, seed=1)
        rs.run(n_sims=3, n_init=4)
        path = rs.save_checkpoint(tmp_path / "rs.npz")
        with pytest.raises(ValueError, match="method"):
            ParticleSwarm.restore(path, task)

    def test_checkpoint_emits_event_and_counter(self, tmp_path):
        from repro.obs import MetricsRegistry, RunLogger, Telemetry

        task = ConstrainedSphere(d=4, seed=0)
        reg, log = MetricsRegistry(), RunLogger()
        rs = RandomSearch(task, seed=1,
                          telemetry=Telemetry(metrics=reg, run_logger=log))
        rs.run(n_sims=3, n_init=4)
        rs.save_checkpoint(tmp_path / "ck.npz")
        assert reg.counter_value("checkpoints_total") == 1
        assert len(log.events("checkpoint_saved")) == 1
