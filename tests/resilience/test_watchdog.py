"""Pool watchdog: hung workers are recovered and charged as attempts."""

import time

import numpy as np
import pytest

import repro.core.parallel as parallel_mod
from repro.core.config import ResilienceConfig
from repro.core.parallel import SimulationExecutor
from repro.core.synthetic import ConstrainedSphere
from repro.obs import MetricsRegistry, Telemetry
from repro.resilience.faults import FaultyTask
from repro.resilience.policy import penalty_metrics


@pytest.mark.slow
class TestWatchdog:
    def test_hung_design_quarantined_and_pool_recovered(self, monkeypatch):
        # Shrink the spin-up slack so the test doesn't wait the full
        # production-grade deadline for a deliberately hung worker.
        monkeypatch.setattr(parallel_mod, "_WATCHDOG_SLACK_S", 3.0)
        inner = ConstrainedSphere(d=5, seed=2)
        designs = inner.space.sample(np.random.default_rng(0), 4)
        # seed=2: exactly one design draws "slow" on both attempts, so it
        # hangs past the deadline twice and exhausts its retry budget.
        task = FaultyTask(inner, slow_rate=0.2, slow_s=60.0, seed=2)
        hung = [i for i, u in enumerate(designs)
                if task.fault_draws(u, 0)["slow"]
                and task.fault_draws(u, 1)["slow"]]
        assert len(hung) == 1
        policy = ResilienceConfig(max_retries=1, sim_timeout_s=0.2)
        reg = MetricsRegistry()
        t0 = time.perf_counter()
        with SimulationExecutor(task, n_workers=2,
                                telemetry=Telemetry(metrics=reg),
                                resilience=policy) as ex:
            metrics = ex.evaluate_batch(designs, kind="actor")
            outcomes = list(ex.last_outcomes)
        # The batch finished in bounded time despite the 60s sleeper.
        assert time.perf_counter() - t0 < 30.0
        assert metrics.shape == (4, inner.m + 1)
        out = outcomes[hung[0]]
        assert out.failed and out.reason == "timeout"
        assert out.retries == 1  # the timed-out attempt was charged
        np.testing.assert_array_equal(out.metrics, penalty_metrics(inner))
        # Healthy designs were re-dispatched and completed normally.
        for i, o in enumerate(outcomes):
            if i != hung[0]:
                assert not o.failed
        # Each timeout tears the wedged pool down (once per attempt).
        assert reg.counter_value("pool_rebuilds_total") == 2
        assert reg.counter_value("sim_failures_total", kind="actor") == 1
