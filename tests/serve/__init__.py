"""Tests for the repro.serve job service."""
