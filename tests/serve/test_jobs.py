"""Tests for job specs, validation, scheduling policy and JobManager.

The manager tests inject a stub runner so scheduling, cancellation,
timeout and resume are exercised without real optimization runs; the
end-to-end path (real MA-Opt runs over the socket) lives in
``test_server.py``.
"""

import json
import threading
import time

import pytest

from repro.analysis.diagnostics import Severity, has_errors
from repro.core.config import ServeConfig
from repro.serve.jobs import (
    Job,
    JobManager,
    JobValidationError,
    build_config,
    canonical_spec,
    select_next,
    spec_hash,
    validate_job,
)

VALID = {"task": "sphere"}


def rules(diags):
    return {d.rule for d in diags}


def errors(diags):
    return [d for d in diags if d.severity >= Severity.ERROR]


class TestCanonicalSpec:
    def test_defaults_filled(self):
        spec = canonical_spec({"task": "sphere"})
        assert spec["schema"] == "repro.serve/job"
        assert spec["schema_version"] == 1
        assert spec["method"] == "MA-Opt"
        assert spec["n_sims"] == 60 and spec["n_init"] == 40
        assert spec["priority"] == "normal"
        assert spec["tenant"] == "default"
        assert spec["timeout_s"] is None
        assert spec["overrides"] == {}

    def test_key_order_and_defaults_do_not_change_identity(self):
        a = {"task": "sphere", "seed": 0, "method": "MA-Opt"}
        b = {"method": "MA-Opt", "task": "sphere"}
        assert canonical_spec(a) == canonical_spec(b)
        assert spec_hash(a) == spec_hash(b)

    def test_hash_is_content_sensitive(self):
        assert spec_hash({"task": "sphere"}) \
            != spec_hash({"task": "sphere", "seed": 1})

    def test_hash_is_stable_hex(self):
        h = spec_hash(VALID)
        assert h == spec_hash(dict(VALID))
        assert len(h) == 64
        int(h, 16)  # hex digest


class TestValidateJob:
    def test_valid_spec_has_no_errors(self):
        assert not errors(validate_job(VALID))

    def test_non_mapping_rejected(self):
        diags = validate_job([1, 2])
        assert rules(diags) == {"job.schema"}

    def test_wrong_schema_version(self):
        diags = validate_job({"task": "sphere", "schema_version": 99})
        assert "job.schema" in rules(diags)

    def test_unknown_task(self):
        assert "job.task" in rules(validate_job({"task": "resistor"}))

    def test_unknown_method(self):
        diags = validate_job({"task": "sphere", "method": "SGD"})
        assert "job.method" in rules(diags)

    @pytest.mark.parametrize("field", ["n_sims", "n_init"])
    @pytest.mark.parametrize("bad", [0, -3, 1.5, "40", True])
    def test_bad_budget(self, field, bad):
        diags = validate_job({"task": "sphere", field: bad})
        assert "job.budget" in rules(diags)

    def test_unknown_priority(self):
        diags = validate_job({"task": "sphere", "priority": "urgent"})
        assert "job.priority" in rules(diags)

    @pytest.mark.parametrize("tenant", ["", "   ", 7, None])
    def test_bad_tenant(self, tenant):
        diags = validate_job({"task": "sphere", "tenant": tenant})
        assert "job.tenant" in rules(diags)

    @pytest.mark.parametrize("timeout", [0, -1, "10", True])
    def test_bad_timeout(self, timeout):
        diags = validate_job({"task": "sphere", "timeout_s": timeout})
        assert "job.timeout" in rules(diags)

    def test_timeout_null_and_positive_ok(self):
        assert not errors(validate_job({"task": "sphere",
                                        "timeout_s": None}))
        assert not errors(validate_job({"task": "sphere",
                                        "timeout_s": 0.5}))

    def test_unknown_override_field(self):
        diags = validate_job({"task": "sphere",
                              "overrides": {"learning_momentum": 3}})
        assert "job.overrides" in rules(diags)

    def test_resilience_override_rejected(self):
        diags = validate_job({"task": "sphere",
                              "overrides": {"resilience": {}}})
        assert any(d.rule == "job.overrides"
                   and "resilience" in (d.location or "")
                   for d in diags)

    def test_overrides_on_baseline_method_rejected(self):
        diags = validate_job({"task": "sphere", "method": "Random",
                              "overrides": {"n_elite": 4}})
        assert "job.overrides" in rules(diags)

    def test_cfg_rules_compose_with_job_budget(self):
        # n_elite larger than the job's whole budget: the optimizer
        # config cross-check fires at submit time with the job's numbers.
        diags = validate_job({"task": "sphere", "n_sims": 4, "n_init": 4,
                              "overrides": {"n_elite": 50}})
        assert "cfg.elite-vs-budget" in rules(diags)
        assert has_errors(diags)

    def test_build_config_applies_override_layering(self):
        config = build_config(canonical_spec(
            {"task": "sphere", "seed": 7, "overrides": {"n_elite": 9}}))
        assert config.n_elite == 9
        assert config.seed == 7

    def test_build_config_seed_override_wins(self):
        config = build_config(canonical_spec(
            {"task": "sphere", "seed": 7, "overrides": {"seed": 11}}))
        assert config.seed == 11


class TestJobRecord:
    def test_round_trip(self):
        job = Job(job_id="job-000003-abcd1234",
                  spec=canonical_spec(VALID), state="finished",
                  attempt=2, run_ids=["a", "a-r2"],
                  summary={"best_fom": 1.0}, submitted_unix=5.0,
                  updated_unix=9.0)
        clone = Job.from_record(job.record())
        assert clone.record() == job.record()

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            Job.from_record({"schema": "something/else"})


def mk(job_id, priority="normal", tenant="default"):
    return Job(job_id=job_id, spec=canonical_spec(
        {"task": "sphere", "priority": priority, "tenant": tenant}))


class TestSelectNext:
    def test_fifo_within_lane(self):
        queued = [mk("j1"), mk("j2")]
        assert select_next(queued, {}, 2) is queued[0]

    def test_priority_beats_fifo(self):
        queued = [mk("j1", "low"), mk("j2", "normal"), mk("j3", "high")]
        assert select_next(queued, {}, 2).job_id == "j3"

    def test_capped_tenant_is_skipped(self):
        queued = [mk("j1", tenant="acme"), mk("j2", tenant="other")]
        assert select_next(queued, {"acme": 2}, 2).job_id == "j2"

    def test_capped_high_lane_does_not_block_lower_lane(self):
        queued = [mk("j1", "high", tenant="acme"),
                  mk("j2", "low", tenant="other")]
        assert select_next(queued, {"acme": 1}, 1).job_id == "j2"

    def test_nothing_runnable(self):
        assert select_next([], {}, 2) is None
        assert select_next([mk("j1", tenant="acme")], {"acme": 1}, 1) \
            is None


def instant_runner(manager, job, recorder, should_stop):
    return None, ""


def blocking_runner(manager, job, recorder, should_stop):
    while True:
        reason = should_stop()
        if reason:
            return None, reason
        time.sleep(0.005)


def manager_on(tmp_path, runner=instant_runner, **cfg):
    cfg.setdefault("poll_s", 0.01)
    return JobManager(tmp_path / "serve", config=ServeConfig(**cfg),
                      task_factory=lambda spec: None, runner=runner)


class TestJobManager:
    def test_submit_rejects_invalid_spec(self, tmp_path):
        manager = manager_on(tmp_path)
        with pytest.raises(JobValidationError) as err:
            manager.submit({"task": "resistor"})
        assert any(d.rule == "job.task" for d in err.value.diagnostics)

    def test_job_ids_are_deterministic_across_fresh_roots(self, tmp_path):
        specs = [{"task": "sphere"}, {"task": "sphere", "seed": 1},
                 {"task": "sphere", "priority": "high"}]
        ids = []
        for root in ("a", "b"):
            manager = manager_on(tmp_path / root)
            ids.append([manager.submit(s)["job_id"] for s in specs])
        assert ids[0] == ids[1]
        assert ids[0][0].startswith("job-000001-")
        assert ids[0][1].startswith("job-000002-")
        # spec identity is in the suffix
        assert ids[0][0].split("-")[-1] != ids[0][1].split("-")[-1]

    def test_record_is_durable_on_submit(self, tmp_path):
        manager = manager_on(tmp_path)
        record = manager.submit(VALID)
        path = manager.jobs_dir / f"{record['job_id']}.json"
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["schema"] == "repro.serve/job-record"
        assert on_disk["state"] == "queued"
        assert on_disk["spec"] == canonical_spec(VALID)

    def test_run_to_finished(self, tmp_path):
        with manager_on(tmp_path) as manager:
            job_id = manager.submit(VALID)["job_id"]
            record = manager.wait(job_id, timeout=10)
        assert record["state"] == "finished"
        assert record["attempt"] == 1
        assert record["run_ids"] == [job_id]
        # the attempt's run record landed in the shared run store
        manifest = json.loads(
            (manager.store.root / job_id / "manifest.json")
            .read_text(encoding="utf-8"))
        assert manifest["meta"]["job_id"] == job_id

    def test_status_by_unique_prefix(self, tmp_path):
        manager = manager_on(tmp_path)
        job_id = manager.submit(VALID)["job_id"]
        assert manager.status(job_id[:10])["job_id"] == job_id
        manager.submit({"task": "sphere", "seed": 1})
        with pytest.raises(KeyError, match="ambiguous"):
            manager.status("job-")
        with pytest.raises(KeyError, match="unknown"):
            manager.status("job-999999")

    def test_tenant_cap_limits_concurrency(self, tmp_path):
        running = []
        peak = []
        lock = threading.Lock()

        def counting_runner(manager, job, recorder, should_stop):
            with lock:
                running.append(job.tenant)
                peak.append(running.count("acme"))
            time.sleep(0.05)
            with lock:
                running.remove(job.tenant)
            return None, ""

        with manager_on(tmp_path, runner=counting_runner, max_workers=3,
                        tenant_cap=1) as manager:
            ids = [manager.submit({"task": "sphere", "seed": i,
                                   "tenant": "acme"})["job_id"]
                   for i in range(4)]
            for job_id in ids:
                assert manager.wait(job_id, timeout=20)["state"] \
                    == "finished"
        assert max(peak) == 1  # never two acme jobs at once

    def test_cancel_queued_job(self, tmp_path):
        manager = manager_on(tmp_path)  # workers never started
        job_id = manager.submit(VALID)["job_id"]
        record = manager.cancel(job_id)
        assert record["state"] == "cancelled"
        assert record["run_ids"] == []  # never ran
        on_disk = json.loads(
            (manager.jobs_dir / f"{job_id}.json")
            .read_text(encoding="utf-8"))
        assert on_disk["state"] == "cancelled"

    def test_cancel_running_job(self, tmp_path):
        with manager_on(tmp_path, runner=blocking_runner) as manager:
            job_id = manager.submit(VALID)["job_id"]
            deadline = time.monotonic() + 10
            while manager.status(job_id)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            manager.cancel(job_id)
            record = manager.wait(job_id, timeout=10)
        assert record["state"] == "cancelled"
        manifest = json.loads(
            (manager.store.root / job_id / "manifest.json")
            .read_text(encoding="utf-8"))
        assert manifest["status"] == "cancelled"

    def test_timeout_fails_job(self, tmp_path):
        with manager_on(tmp_path, runner=blocking_runner) as manager:
            job_id = manager.submit(
                {"task": "sphere", "timeout_s": 0.2})["job_id"]
            record = manager.wait(job_id, timeout=10)
        assert record["state"] == "failed"
        assert record["error"] == "stopped: timeout after 0.2s"

    def test_runner_crash_fails_job_not_pool(self, tmp_path):
        def crashing_runner(manager, job, recorder, should_stop):
            raise RuntimeError("boom")

        with manager_on(tmp_path, runner=crashing_runner) as manager:
            first = manager.submit(VALID)["job_id"]
            record = manager.wait(first, timeout=10)
            assert record["state"] == "failed"
            assert "boom" in record["error"]
            # the pool survives: swap in a good runner and run again
            manager._runner = instant_runner
            second = manager.submit({"task": "sphere", "seed": 1})["job_id"]
            assert manager.wait(second, timeout=10)["state"] == "finished"

    def test_shutdown_interrupts_running_job(self, tmp_path):
        manager = manager_on(tmp_path, runner=blocking_runner)
        manager.start()
        job_id = manager.submit(VALID)["job_id"]
        deadline = time.monotonic() + 10
        while manager.status(job_id)["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        manager.close()
        assert manager.status(job_id)["state"] == "interrupted"

    def test_resume_requeues_unfinished_jobs(self, tmp_path):
        manager = manager_on(tmp_path)  # never started: jobs stay queued
        queued = manager.submit(VALID)["job_id"]
        interrupted = manager.submit({"task": "sphere", "seed": 1})["job_id"]
        done = manager.submit({"task": "sphere", "seed": 2})["job_id"]
        # simulate prior-process outcomes on disk
        for job_id, state in ((interrupted, "interrupted"),
                              (done, "finished")):
            job = manager._get(job_id)
            job.state = state
            manager._persist(job)
        manager.close()

        fresh = manager_on(tmp_path)
        requeued = fresh.resume()
        assert requeued == [queued, interrupted]
        assert fresh.status(done)["state"] == "finished"
        # sequence counter restored: no ID collision with old jobs
        new_id = fresh.submit({"task": "sphere", "seed": 3})["job_id"]
        assert new_id.startswith("job-000004-")
        fresh.start()
        for job_id in (queued, interrupted):
            assert fresh.wait(job_id, timeout=10)["state"] == "finished"
        fresh.close()

    def test_resume_is_idempotent_for_loaded_jobs(self, tmp_path):
        manager = manager_on(tmp_path)
        manager.submit(VALID)
        manager.close()
        fresh = manager_on(tmp_path)
        first = fresh.resume()
        assert len(first) == 1
        assert fresh.resume() == []  # already loaded

    def test_submit_after_shutdown_refused(self, tmp_path):
        manager = manager_on(tmp_path)
        manager.close()
        with pytest.raises(RuntimeError, match="shutting down"):
            manager.submit(VALID)

    def test_counts_and_list_filters(self, tmp_path):
        manager = manager_on(tmp_path)
        a = manager.submit({"task": "sphere", "tenant": "acme"})["job_id"]
        manager.submit({"task": "sphere", "tenant": "beta"})
        manager.cancel(a)
        assert manager.counts() == {"queued": 1, "cancelled": 1}
        assert [r["job_id"] for r in manager.list_jobs(tenant="acme")] \
            == [a]
        assert [r["state"] for r in manager.list_jobs(state="queued")] \
            == ["queued"]
