"""The serve subsystem must stay clean under the repo's own analyzers.

This is the same battery the CI lint gate runs (codelint + flow passes +
lockset analysis) pinned to ``src/repro/serve``, so a regression shows
up as a focused test failure here before it trips the repo-wide
baseline gate.
"""

import pathlib

from repro.analysis.codelint import lint_source
from repro.analysis.concurrency import check_paths as check_concurrency
from repro.analysis.flow import iter_python_files
from repro.analysis.locks import check_paths as check_locks
from repro.analysis.protoconform import check_paths as check_protoconform
from repro.analysis.rngflow import check_source as check_rngflow
from repro.analysis.taint import check_paths as check_taint

REPO = pathlib.Path(__file__).resolve().parents[2]
SERVE = REPO / "src/repro/serve"


def render(diags):
    return "\n".join(d.render() for d in diags)


def test_serve_package_exists():
    assert (SERVE / "jobs.py").exists()


def test_codelint_clean():
    diags = []
    for path in iter_python_files([SERVE]):
        diags.extend(lint_source(path.read_text(encoding="utf-8"),
                                 str(path)))
    assert not diags, render(diags)


def test_rngflow_clean():
    diags = []
    for path in iter_python_files([SERVE]):
        diags.extend(check_rngflow(path.read_text(encoding="utf-8"),
                                   str(path)))
    assert not diags, render(diags)


def test_concurrency_clean():
    diags = check_concurrency([SERVE])
    assert not diags, render(diags)


def test_locks_clean():
    diags = check_locks([SERVE])
    assert not diags, render(diags)


def test_taint_clean():
    # The trust boundary itself must hold: no client-supplied spec field
    # reaches a path/exec/budget/format/frame sink unsanitized.
    diags = check_taint([SERVE])
    assert not diags, render(diags)


def test_protoconform_clean():
    # The implemented lifecycle, op dispatch and error codes must match
    # the declared tables and the service doc.
    diags = check_protoconform([SERVE], doc=REPO / "docs/service.md")
    assert not diags, render(diags)
