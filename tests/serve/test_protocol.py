"""Tests for the NDJSON wire protocol (pure framing, no sockets)."""

import json

import pytest

from repro.serve import protocol


class TestFraming:
    def test_encode_is_one_compact_line(self):
        frame = protocol.encode({"b": 1, "a": {"x": [1, 2]}})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        assert b" " not in frame  # compact separators
        assert json.loads(frame) == {"a": {"x": [1, 2]}, "b": 1}

    def test_encode_is_deterministic(self):
        a = protocol.encode({"x": 1, "y": 2})
        b = protocol.encode({"y": 2, "x": 1})
        assert a == b

    def test_round_trip(self):
        doc = protocol.request("status", "req-0007", {"job_id": "job-x"})
        assert protocol.decode(protocol.encode(doc)) == doc

    def test_decode_accepts_str_and_bytes(self):
        assert protocol.decode('{"op":"ping"}') == {"op": "ping"}
        assert protocol.decode(b'{"op":"ping"}') == {"op": "ping"}

    def test_decode_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode(b"not json\n")
        assert err.value.code == "bad-request"

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode(b"[1,2,3]\n")
        assert err.value.code == "bad-request"

    def test_decode_rejects_oversized_frame(self):
        blob = b'"' + b"x" * protocol.MAX_FRAME_BYTES + b'"'
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode(blob)
        assert err.value.code == "bad-request"


class TestValidateRequest:
    def test_well_formed(self):
        req = protocol.validate_request(
            {"id": "req-0001", "op": "submit", "params": {"spec": {}}})
        assert req == {"id": "req-0001", "op": "submit",
                       "params": {"spec": {}}}

    def test_params_default_to_empty(self):
        req = protocol.validate_request({"id": "r", "op": "ping"})
        assert req["params"] == {}

    def test_missing_op(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request({"id": "r"})
        assert err.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request({"id": "r", "op": "explode"})
        assert err.value.code == "unknown-op"
        assert "explode" in str(err.value)

    def test_non_string_id(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request({"id": 7, "op": "ping"})
        assert err.value.code == "bad-request"

    def test_non_object_params(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request({"op": "ping", "params": [1]})
        assert err.value.code == "bad-request"

    def test_every_declared_op_validates(self):
        for op in protocol.OPS:
            assert protocol.validate_request({"op": op})["op"] == op


class TestReplies:
    def test_ok_reply(self):
        reply = protocol.ok_reply("req-1", {"jobs": []})
        assert reply == {"id": "req-1", "ok": True, "result": {"jobs": []}}

    def test_error_reply_without_diagnostics(self):
        reply = protocol.error_reply("req-1", "unknown-job", "nope")
        assert reply["ok"] is False
        assert reply["error"] == {"code": "unknown-job", "message": "nope"}

    def test_error_reply_with_diagnostics(self):
        diags = [{"rule": "job.task", "message": "bad"}]
        reply = protocol.error_reply(None, "invalid-job", "bad spec",
                                     diagnostics=diags)
        assert reply["id"] is None
        assert reply["error"]["diagnostics"] == diags

    def test_error_codes_are_declared(self):
        for code in ("bad-request", "unknown-op", "invalid-job",
                     "unknown-job", "not-finished", "shutting-down",
                     "internal"):
            assert code in protocol.ERROR_CODES
