"""End-to-end tests: real MA-Opt jobs over the NDJSON socket protocol.

These exercise the full service stack — JobClient -> JobServer ->
JobManager -> MAOptimizer -> RunStore — on the synthetic sphere task
with tiny budgets, including the two durability claims the subsystem
makes: concurrent clients all complete, and a killed server resumes
bit-exactly from its checkpoints.
"""

import json
import socket
import threading
import time

import pytest

from repro.core.config import ServeConfig
from repro.serve import protocol
from repro.serve.client import JobClient, ServeError, read_endpoint
from repro.serve.jobs import JobManager, build_config, canonical_spec
from repro.serve.server import JobServer, endpoint_path

#: Tiny-but-valid MA-Opt job: passes the cfg.* budget cross-checks and
#: runs in well under a second on the sphere task.
TINY = {
    "task": "sphere",
    "method": "MA-Opt",
    "n_sims": 4,
    "n_init": 10,
    "overrides": {"n_elite": 6, "batch_size": 8, "critic_steps": 5,
                  "actor_steps": 3},
}


def serve_on(tmp_path, **cfg):
    cfg.setdefault("max_workers", 2)
    cfg.setdefault("poll_s", 0.01)
    manager = JobManager(tmp_path / "serve",
                         config=ServeConfig(**cfg)).start()
    server = JobServer(manager).start()
    return manager, server


class TestProtocolOverSocket:
    def test_ping_and_endpoint_discovery(self, tmp_path):
        manager, server = serve_on(tmp_path)
        try:
            doc = read_endpoint(manager.root)
            assert doc["port"] == server.port
            with JobClient.connect(manager.root) as client:
                pong = client.ping()
            assert pong["protocol"] == protocol.PROTOCOL_NAME
            assert pong["version"] == protocol.PROTOCOL_VERSION
        finally:
            server.close()
            manager.close()
        assert not endpoint_path(manager.root).exists()

    def test_connect_without_server_is_friendly(self, tmp_path):
        with pytest.raises(ServeError) as err:
            JobClient.connect(tmp_path / "nowhere")
        assert err.value.code == "disconnected"
        assert "ma-opt serve" in str(err.value)

    def test_invalid_spec_returns_diagnostics(self, tmp_path):
        manager, server = serve_on(tmp_path)
        try:
            with JobClient.connect(manager.root) as client:
                with pytest.raises(ServeError) as err:
                    client.submit({"task": "resistor", "n_sims": 0})
            assert err.value.code == "invalid-job"
            assert {d["rule"] for d in err.value.diagnostics} \
                >= {"job.task", "job.budget"}
        finally:
            server.close()
            manager.close()

    def test_structured_errors(self, tmp_path):
        manager, server = serve_on(tmp_path)
        try:
            with JobClient.connect(manager.root) as client:
                with pytest.raises(ServeError) as unknown:
                    client.status("job-999999")
                assert unknown.value.code == "unknown-job"
                job_id = client.submit(dict(TINY))["job_id"]
                try:
                    client.result(job_id)
                except ServeError as exc:
                    assert exc.code == "not-finished"
                client.wait(job_id, timeout=60)
                assert client.result(job_id)["state"] == "finished"
        finally:
            server.close()
            manager.close()

    def test_garbage_line_gets_bad_request_reply(self, tmp_path):
        manager, server = serve_on(tmp_path)
        try:
            with socket.create_connection((server.host, server.port),
                                          timeout=5) as raw:
                fh = raw.makefile("rwb")
                fh.write(b"this is not json\n")
                fh.flush()
                reply = protocol.decode(
                    fh.readline(protocol.MAX_FRAME_BYTES + 1))
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad-request"
        finally:
            server.close()
            manager.close()

    def test_pipelined_requests_reply_in_order(self, tmp_path):
        manager, server = serve_on(tmp_path)
        try:
            with socket.create_connection((server.host, server.port),
                                          timeout=5) as raw:
                fh = raw.makefile("rwb")
                for i in range(3):
                    fh.write(protocol.encode(
                        protocol.request("ping", f"req-{i}")))
                fh.flush()
                ids = [protocol.decode(
                           fh.readline(protocol.MAX_FRAME_BYTES + 1))["id"]
                       for i in range(3)]
            assert ids == ["req-0", "req-1", "req-2"]
        finally:
            server.close()
            manager.close()


@pytest.mark.slow
class TestEndToEnd:
    def test_parallel_clients_all_finish(self, tmp_path):
        manager, server = serve_on(tmp_path, max_workers=2, tenant_cap=2)
        results = {}
        failures = []

        def one_client(i):
            try:
                with JobClient.connect(manager.root) as client:
                    spec = dict(TINY, seed=i, tenant=f"t{i % 2}")
                    job_id = client.submit(spec)["job_id"]
                    record = client.wait(job_id, timeout=120)
                    results[i] = record
            except Exception as exc:  # surface in the main thread
                failures.append((i, repr(exc)))

        try:
            threads = [threading.Thread(target=one_client, args=(i,),
                                        name=f"client-{i}")
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
        finally:
            server.close()
            manager.close()
        assert not failures
        assert len(results) == 4
        for record in results.values():
            assert record["state"] == "finished"
            assert record["summary"]["n_sims"] == TINY["n_sims"]
            run_dir = manager.store.root / record["run_ids"][-1]
            manifest = json.loads(
                (run_dir / "manifest.json").read_text(encoding="utf-8"))
            assert manifest["status"] == "finished"

    def test_same_spec_is_deterministic(self, tmp_path):
        manager, server = serve_on(tmp_path, max_workers=1)
        try:
            with JobClient.connect(manager.root) as client:
                a = client.submit(dict(TINY))["job_id"]
                b = client.submit(dict(TINY))["job_id"]
                fom_a = client.wait(a, timeout=120)["summary"]["best_fom"]
                fom_b = client.wait(b, timeout=120)["summary"]["best_fom"]
        finally:
            server.close()
            manager.close()
        assert fom_a == fom_b

    def test_cancel_mid_run_over_protocol(self, tmp_path):
        slow = dict(TINY, n_sims=200,
                    overrides=dict(TINY["overrides"], critic_steps=40))
        manager, server = serve_on(tmp_path, max_workers=1)
        try:
            with JobClient.connect(manager.root) as client:
                job_id = client.submit(slow)["job_id"]
                deadline = time.monotonic() + 60
                while client.status(job_id)["state"] != "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                info = client.tail_info(job_id)
                assert info["run_dir"] is not None
                client.cancel(job_id)
                record = client.wait(job_id, timeout=120)
        finally:
            server.close()
            manager.close()
        assert record["state"] == "cancelled"
        manifest = json.loads(
            (manager.store.root / record["run_ids"][-1] / "manifest.json")
            .read_text(encoding="utf-8"))
        assert manifest["status"] == "cancelled"

    def test_kill_and_resume_is_bit_exact(self, tmp_path):
        from repro.core.synthetic import ConstrainedSphere

        class SlowSphere(ConstrainedSphere):
            """Same numerics, slowed so the kill lands mid-run."""

            def simulate(self, u):
                time.sleep(0.02)
                return super().simulate(u)

        spec = dict(TINY, n_sims=40)
        manager = JobManager(
            tmp_path / "serve",
            config=ServeConfig(max_workers=1, poll_s=0.01,
                               checkpoint_every=1),
            task_factory=lambda s: SlowSphere(d=12, seed=3)).start()
        server = JobServer(manager).start()
        with JobClient.connect(manager.root) as client:
            job_id = client.submit(spec)["job_id"]
            # wait for the first checkpoint, then kill the service
            ckpt = manager.checkpoint_path(job_id)
            deadline = time.monotonic() + 60
            while not ckpt.exists():
                assert time.monotonic() < deadline, "no checkpoint yet"
                time.sleep(0.01)
        manager.close()  # stops the job at its next round boundary
        server.close()
        record = manager.status(job_id)
        assert record["state"] == "interrupted", \
            f"job finished before the kill — raise the budget ({record})"

        # restart on the same root: the job continues from its checkpoint
        fresh = JobManager(manager.root,
                           config=ServeConfig(max_workers=1, poll_s=0.01,
                                              checkpoint_every=1))
        assert fresh.resume() == [job_id]
        fresh.start()
        server2 = JobServer(fresh).start()
        try:
            with JobClient.connect(fresh.root) as client:
                final = client.wait(job_id, timeout=300)
        finally:
            server2.close()
            fresh.close()
        assert final["state"] == "finished"
        assert final["attempt"] == 2
        assert final["run_ids"] == [job_id, f"{job_id}-r2"]

        # reference: the same spec run uninterrupted, no service involved
        from repro.core.ma_opt import MAOptimizer
        from repro.core.synthetic import ConstrainedSphere

        reference = MAOptimizer(
            ConstrainedSphere(d=12, seed=3),
            build_config(canonical_spec(spec))).run(
                n_sims=spec["n_sims"], n_init=spec["n_init"],
                method_name=spec["method"])
        assert final["summary"]["best_fom"] == float(reference.best_fom)
        assert final["summary"]["n_sims"] == len(reference.records)
