"""AC analysis tests against analytic transfer functions."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, ac_analysis, operating_point
from repro.spice.ac import logspace_frequencies
from repro.spice.exceptions import AnalysisError


def rc_lowpass(r=1e3, c=1e-9):
    ckt = Circuit()
    ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    return ckt


class TestLinearAC:
    def test_rc_pole_magnitude_and_phase(self):
        r, c = 1e3, 1e-9
        fp = 1 / (2 * np.pi * r * c)
        ckt = rc_lowpass(r, c)
        freqs = np.array([fp / 100, fp, fp * 100])
        ac = ac_analysis(ckt, freqs)
        h = ac.v("out")
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-3)
        assert abs(h[1]) == pytest.approx(1 / np.sqrt(2), rel=1e-3)
        assert np.degrees(np.angle(h[1])) == pytest.approx(-45.0, abs=0.5)
        assert abs(h[2]) == pytest.approx(0.01, rel=0.01)

    def test_rc_highpass(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_capacitor("C", "in", "out", 1e-9)
        ckt.add_resistor("R", "out", "0", 1e3)
        fp = 1 / (2 * np.pi * 1e3 * 1e-9)
        ac = ac_analysis(ckt, np.array([fp / 100, fp * 100]))
        h = ac.v("out")
        assert abs(h[0]) < 0.02
        assert abs(h[1]) == pytest.approx(1.0, rel=0.01)

    def test_lc_resonance(self):
        """Series RLC driven at resonance: |V_C| = Q."""
        r, l, c = 10.0, 1e-6, 1e-9
        f0 = 1 / (2 * np.pi * np.sqrt(l * c))
        q = np.sqrt(l / c) / r
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_resistor("R", "in", "a", r)
        ckt.add_inductor("L", "a", "b", l)
        ckt.add_capacitor("C", "b", "0", c)
        ac = ac_analysis(ckt, np.array([f0]))
        assert abs(ac.v("b")[0]) == pytest.approx(q, rel=0.01)

    def test_superposition_of_two_ac_sources(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 0.0, ac=1.0)
        ckt.add_vsource("V2", "b", "0", 0.0, ac=1.0)
        ckt.add_resistor("R1", "a", "out", 1e3)
        ckt.add_resistor("R2", "b", "out", 1e3)
        ckt.add_resistor("R3", "out", "0", 1e3)
        ac = ac_analysis(ckt, np.array([1e3]))
        # out = (1/1k + 1/1k) / (3/1k) = 2/3
        assert abs(ac.v("out")[0]) == pytest.approx(2 / 3, rel=1e-6)

    def test_empty_freqs_raise(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), np.array([]))

    def test_negative_freq_raises(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), np.array([-1.0]))


class TestMosfetAC:
    def test_cs_gain_matches_gm_rout(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.65, ac=1.0)
        ckt.add_resistor("RL", "vdd", "d", 20e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, w=10e-6, l=1e-6)
        op = operating_point(ckt)
        info = op.element_info("M1")
        rout = 1.0 / (1.0 / 20e3 + info["gds"])
        expected = info["gm"] * rout
        ac = ac_analysis(ckt, np.array([100.0]), op)
        assert abs(ac.v("d")[0]) == pytest.approx(expected, rel=1e-3)

    def test_gain_rolls_off_with_load_cap(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.65, ac=1.0)
        ckt.add_resistor("RL", "vdd", "d", 20e3)
        ckt.add_capacitor("CL", "d", "0", 10e-12)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, w=10e-6, l=1e-6)
        op = operating_point(ckt)
        freqs = logspace_frequencies(1e2, 1e9, 4)
        h = ac_analysis(ckt, freqs, op).v("d")
        assert abs(h[-1]) < 0.05 * abs(h[0])

    def test_accepts_op_result_or_array(self):
        ckt = rc_lowpass()
        op = operating_point(ckt)
        a = ac_analysis(ckt, np.array([1e3]), op)
        b = ac_analysis(ckt, np.array([1e3]), op.x)
        np.testing.assert_allclose(a.xs, b.xs)


class TestFrequencyGrid:
    def test_logspace_endpoints(self):
        f = logspace_frequencies(10.0, 1e6, 10)
        assert f[0] == pytest.approx(10.0)
        assert f[-1] == pytest.approx(1e6)

    def test_points_per_decade(self):
        f = logspace_frequencies(1.0, 1e4, 5)
        assert len(f) == 21

    def test_bad_range_raises(self):
        with pytest.raises(AnalysisError):
            logspace_frequencies(1e6, 1e3)
        with pytest.raises(AnalysisError):
            logspace_frequencies(0.0, 1e3)
