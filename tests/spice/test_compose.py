"""Tests for programmatic subcircuit composition."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, operating_point
from repro.spice.exceptions import NetlistError


def divider_block():
    sub = Circuit("divider")
    sub.add_resistor("Rtop", "in", "out", 1e3)
    sub.add_resistor("Rbot", "out", "0", 1e3)
    return sub


class TestAddSubcircuit:
    def test_basic_flattening(self):
        top = Circuit()
        top.add_vsource("V1", "a", "0", 2.0)
        top.add_subcircuit("U1", divider_block(),
                           {"in": "a", "out": "mid"})
        assert "U1.Rtop" in top
        op = operating_point(top)
        assert op.v("mid") == pytest.approx(1.0, rel=1e-6)

    def test_internal_nodes_prefixed(self):
        sub = Circuit()
        sub.add_resistor("R1", "in", "hidden", 1e3)
        sub.add_resistor("R2", "hidden", "out", 1e3)
        top = Circuit()
        top.add_vsource("V1", "a", "0", 1.0)
        top.add_resistor("RL", "b", "0", 1e3)
        top.add_subcircuit("U1", sub, {"in": "a", "out": "b"})
        assert top.node_index("U1.hidden") >= 0

    def test_two_instances_independent(self):
        top = Circuit()
        top.add_vsource("V1", "a", "0", 4.0)
        top.add_subcircuit("U1", divider_block(), {"in": "a", "out": "m"})
        top.add_subcircuit("U2", divider_block(), {"in": "m", "out": "n"})
        op = operating_point(top)
        assert op.v("m") > op.v("n") > 0

    def test_deep_copy_no_shared_state(self):
        sub = divider_block()
        top = Circuit()
        top.add_vsource("V1", "a", "0", 1.0)
        top.add_subcircuit("U1", sub, {"in": "a", "out": "m"})
        top["U1.Rtop"].resistance = 9e9
        assert sub["Rtop"].resistance == 1e3

    def test_ground_not_remapped(self):
        sub = Circuit()
        sub.add_resistor("R1", "p", "gnd", 1e3)
        top = Circuit()
        top.add_vsource("V1", "x", "0", 1.0)
        top.add_subcircuit("U1", sub, {"p": "x"})
        op = operating_point(top)
        assert op.branch_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_mosfet_block(self):
        sub = Circuit()
        sub.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 10e-6, 1e-6)
        top = Circuit()
        top.add_vsource("Vdd", "vdd", "0", 1.8)
        top.add_vsource("Vg", "gate", "0", 0.7)
        top.add_resistor("RL", "vdd", "drain", 10e3)
        top.add_subcircuit("A", sub, {"d": "drain", "g": "gate"})
        op = operating_point(top)
        assert op.element_info("A.M1")["id"] > 1e-7

    def test_empty_instance_name_raises(self):
        with pytest.raises(NetlistError):
            Circuit().add_subcircuit("", divider_block(), {})

    def test_duplicate_instance_raises(self):
        top = Circuit()
        top.add_vsource("V1", "a", "0", 1.0)
        top.add_subcircuit("U1", divider_block(), {"in": "a", "out": "m"})
        with pytest.raises(NetlistError):
            top.add_subcircuit("U1", divider_block(), {"in": "a", "out": "m"})
