"""Tests for process corners and Monte Carlo mismatch."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, PMOS_180, operating_point
from repro.spice.corners import CORNER_NAMES, corner_models
from repro.spice.montecarlo import apply_mismatch, monte_carlo, restore_models


class TestCorners:
    def test_all_corners_resolve(self):
        for name in CORNER_NAMES:
            n, p = corner_models(name)
            assert n.polarity == 1 and p.polarity == -1

    def test_tt_is_nominal(self):
        n, p = corner_models("tt")
        assert n is NMOS_180 and p is PMOS_180

    def test_ff_is_faster(self):
        n, p = corner_models("ff")
        assert n.vto < NMOS_180.vto
        assert n.kp > NMOS_180.kp
        assert p.vto < PMOS_180.vto

    def test_ss_is_slower(self):
        n, _ = corner_models("ss")
        assert n.vto > NMOS_180.vto
        assert n.kp < NMOS_180.kp

    def test_skewed_corners(self):
        n_fs, p_fs = corner_models("fs")
        assert n_fs.vto < NMOS_180.vto      # fast N
        assert p_fs.vto > PMOS_180.vto      # slow P

    def test_case_insensitive(self):
        n1, _ = corner_models("FF")
        n2, _ = corner_models("ff")
        assert n1.vto == n2.vto

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            corner_models("typ")

    def test_corner_shifts_circuit_current(self):
        def current(nmos):
            ckt = Circuit()
            ckt.add_vsource("Vdd", "vdd", "0", 1.8)
            ckt.add_vsource("Vg", "g", "0", 0.8)
            ckt.add_resistor("R", "vdd", "d", 1e3)
            ckt.add_mosfet("M1", "d", "g", "0", "0", nmos, 10e-6, 1e-6)
            return operating_point(ckt).element_info("M1")["id"]

        i_tt = current(corner_models("tt")[0])
        i_ff = current(corner_models("ff")[0])
        i_ss = current(corner_models("ss")[0])
        assert i_ff > i_tt > i_ss

    def test_circuit_tasks_accept_corner(self):
        from repro.circuits import TwoStageOTA

        fast = TwoStageOTA(corner="ff")
        slow = TwoStageOTA(corner="ss")
        assert fast.nmos.vto < slow.nmos.vto


class TestMismatch:
    def _pair(self):
        ckt = Circuit("pair")
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vp", "a", "0", 0.9)
        ckt.add_vsource("Vn", "b", "0", 0.9)
        ckt.add_isource("It", "t", "0", 20e-6)
        ckt.add_mosfet("M1", "x", "a", "t", "0", NMOS_180, 10e-6, 1e-6)
        ckt.add_mosfet("M2", "y", "b", "t", "0", NMOS_180, 10e-6, 1e-6)
        ckt.add_resistor("R1", "vdd", "x", 50e3)
        ckt.add_resistor("R2", "vdd", "y", 50e3)
        return ckt

    def test_apply_and_restore(self, rng):
        ckt = self._pair()
        orig_vto = ckt["M1"].model.vto
        saved = apply_mismatch(ckt, rng)
        assert ckt["M1"].model.vto != orig_vto
        restore_models(ckt, saved)
        assert ckt["M1"].model.vto == orig_vto

    def test_mismatch_creates_offset(self, rng):
        """A perfectly matched pair has zero offset; mismatch breaks it."""
        ckt = self._pair()
        op = operating_point(ckt)
        assert abs(op.v("x") - op.v("y")) < 1e-9
        apply_mismatch(ckt, rng)
        op2 = operating_point(ckt)
        assert abs(op2.v("x") - op2.v("y")) > 1e-6

    def test_pelgrom_area_scaling(self, rng):
        """Offset sigma shrinks roughly with sqrt(area)."""

        def offsets(w, l, n=40):
            def build():
                ckt = self._pair()
                ckt["M1"].w = ckt["M2"].w = w
                ckt["M1"].l = ckt["M2"].l = l
                return ckt

            def measure(ckt):
                op = operating_point(ckt)
                return op.v("x") - op.v("y")

            return monte_carlo(build, measure, n,
                               rng=np.random.default_rng(5))

        small = np.nanstd(offsets(2e-6, 0.5e-6))
        big = np.nanstd(offsets(50e-6, 2e-6))
        assert big < small / 2

    def test_failed_samples_are_nan(self):
        def build():
            return self._pair()

        def measure(ckt):
            raise RuntimeError("boom")

        out = monte_carlo(build, measure, 3, rng=np.random.default_rng(0))
        assert np.all(np.isnan(out))

    def test_bad_sample_count_raises(self):
        with pytest.raises(ValueError):
            monte_carlo(self._pair, lambda c: 0.0, 0)
