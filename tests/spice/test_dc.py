"""DC operating-point and sweep tests against hand-computable circuits."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, PMOS_180, dc_sweep, operating_point
from repro.spice.exceptions import AnalysisError


class TestLinearDC:
    def test_voltage_divider(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 10.0)
        ckt.add_resistor("R1", "in", "out", 3e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(2.5, rel=1e-6)

    def test_source_branch_current_sign(self):
        """A supply sourcing current reports negative branch current."""
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "0", 1e3)
        op = operating_point(ckt)
        assert op.branch_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_polarity(self):
        """1 mA from a to 0 through the source pulls a below ground."""
        ckt = Circuit()
        ckt.add_isource("I1", "a", "0", 1e-3)
        ckt.add_resistor("R1", "a", "0", 1e3)
        op = operating_point(ckt)
        assert op.v("a") == pytest.approx(-1.0, rel=1e-6)

    def test_superposition(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 2.0)
        ckt.add_isource("I1", "0", "b", 1e-3)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_resistor("R2", "b", "0", 1e3)
        op = operating_point(ckt)
        # KCL at b: (vb-2)/1k + vb/1k = 1mA -> vb = 1.5
        assert op.v("b") == pytest.approx(1.5, rel=1e-6)

    def test_vcvs(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_vcvs("E1", "out", "0", "in", "0", 5.0)
        ckt.add_resistor("RL", "out", "0", 1e3)
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(5.0, rel=1e-6)

    def test_vccs(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 2.0)
        ckt.add_vccs("G1", "0", "out", "in", "0", 1e-3)  # injects into out
        ckt.add_resistor("RL", "out", "0", 1e3)
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_inductor("L1", "a", "b", 1e-6)
        ckt.add_resistor("R1", "b", "0", 1e3)
        op = operating_point(ckt)
        assert op.v("b") == pytest.approx(1.0, rel=1e-6)

    def test_capacitor_is_dc_open(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_capacitor("C1", "b", "0", 1e-9)
        ckt.add_resistor("R2", "b", "0", 1e6)
        op = operating_point(ckt)
        # divider 1k/1M: v(b) ~ 0.999
        assert op.v("b") == pytest.approx(1e6 / (1e6 + 1e3), rel=1e-6)

    def test_supply_power(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 2.0)
        ckt.add_resistor("R1", "in", "0", 1e3)
        op = operating_point(ckt)
        assert op.supply_power("V1") == pytest.approx(4e-3, rel=1e-6)

    def test_empty_circuit_raises(self):
        with pytest.raises(AnalysisError):
            operating_point(Circuit())

    def test_bad_guess_shape_raises(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalysisError):
            operating_point(ckt, x0=np.zeros(99))


class TestNonlinearDC:
    def test_diode_clamp(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 5.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0")
        op = operating_point(ckt)
        vd = op.v("d")
        assert 0.4 < vd < 0.8
        # KCL consistency: resistor current equals diode current
        i_r = (5.0 - vd) / 1e3
        i_d = op.element_info("D1")["i"]
        assert i_r == pytest.approx(i_d, rel=1e-4)

    def test_nmos_diode_connected(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "vdd", "0", 1.8)
        ckt.add_resistor("R1", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", NMOS_180, w=10e-6, l=1e-6)
        op = operating_point(ckt)
        vgs = op.v("d")
        assert NMOS_180.vto < vgs < 1.2
        i = op.element_info("M1")["id"]
        assert i == pytest.approx((1.8 - vgs) / 10e3, rel=1e-4)

    def test_current_mirror_ratio(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_isource("Iref", "nd", "0", 50e-6)
        ckt.add_mosfet("MP1", "nd", "nd", "vdd", "vdd", PMOS_180,
                       w=20e-6, l=1e-6)
        ckt.add_mosfet("MP2", "no", "nd", "vdd", "vdd", PMOS_180,
                       w=20e-6, l=1e-6, m=3)
        ckt.add_resistor("RO", "no", "0", 5e3)
        op = operating_point(ckt)
        i_out = op.v("no") / 5e3
        assert i_out == pytest.approx(150e-6, rel=0.1)

    def test_cmos_inverter_transfer(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vin", "in", "0", 0.0)
        ckt.add_mosfet("MN", "out", "in", "0", "0", NMOS_180, 2e-6, 0.18e-6)
        ckt.add_mosfet("MP", "out", "in", "vdd", "vdd", PMOS_180,
                       4e-6, 0.18e-6)
        sweep = dc_sweep(ckt, "Vin", np.linspace(0.0, 1.8, 19))
        vout = sweep.v("out")
        assert vout[0] > 1.7          # input low -> output high
        assert vout[-1] < 0.1         # input high -> output low
        assert all(b <= a + 1e-6 for a, b in zip(vout, vout[1:]))  # monotone

    def test_gmin_stepping_rescues_hard_start(self):
        """A high-gain stack that plain Newton from zeros may miss still
        converges via homotopy."""
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vb", "g", "0", 0.55)
        prev = "vdd"
        for i in range(4):
            node = f"n{i}"
            ckt.add_resistor(f"R{i}", prev, node, 50e3)
            ckt.add_mosfet(f"M{i}", node, "g", "0", "0", NMOS_180,
                           w=50e-6, l=0.5e-6)
            prev = node
        op = operating_point(ckt)
        assert np.all(np.isfinite(op.x))


class TestSweep:
    def test_sweep_restores_waveform(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 2.5)
        ckt.add_resistor("R1", "a", "0", 1e3)
        dc_sweep(ckt, "V1", np.array([0.0, 1.0]))
        op = operating_point(ckt)
        assert op.v("a") == pytest.approx(2.5)

    def test_sweep_values_tracked(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 0.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_resistor("R2", "b", "0", 1e3)
        sweep = dc_sweep(ckt, "V1", np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(sweep.v("b"), [0.0, 0.5, 1.0], atol=1e-9)

    def test_empty_sweep_raises(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalysisError):
            dc_sweep(ckt, "V1", np.array([]))

    def test_sweep_non_source_raises(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(AnalysisError):
            dc_sweep(ckt, "R1", np.array([1.0]))
