"""Additional element-level tests: controlled sources, diode transients,
element validation, OP reports."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    NMOS_180,
    PMOS_180,
    ac_analysis,
    operating_point,
    transient_analysis,
)
from repro.spice.elements import Capacitor, Inductor, Mosfet, Resistor
from repro.spice.models import DiodeModel
from repro.spice.report import op_report
from repro.spice.waveforms import Pulse


class TestElementValidation:
    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", -1.0)

    def test_zero_capacitance_rejected(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "b", 0.0)

    def test_zero_inductance_rejected(self):
        with pytest.raises(ValueError):
            Inductor("L1", "a", "b", 0.0)

    def test_mosfet_geometry_validated(self):
        with pytest.raises(ValueError):
            Mosfet("M1", "d", "g", "s", "b", NMOS_180, w=-1e-6, l=1e-6)
        with pytest.raises(ValueError):
            Mosfet("M1", "d", "g", "s", "b", NMOS_180, w=1e-6, l=1e-6, m=0)


class TestControlledSourceAC:
    def test_vcvs_gain_flat_over_frequency(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_vcvs("E1", "out", "0", "in", "0", 7.0)
        ckt.add_resistor("RL", "out", "0", 1e3)
        ac = ac_analysis(ckt, np.array([1e2, 1e6, 1e9]))
        np.testing.assert_allclose(np.abs(ac.v("out")), 7.0, rtol=1e-9)

    def test_vccs_into_cap_integrates(self):
        """VCCS driving a capacitor: |H| = gm / (w C)."""
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_vccs("G1", "0", "out", "in", "0", 1e-3)
        ckt.add_capacitor("C1", "out", "0", 1e-9)
        f = 1e6
        ac = ac_analysis(ckt, np.array([f]))
        expected = 1e-3 / (2 * np.pi * f * 1e-9)
        assert abs(ac.v("out")[0]) == pytest.approx(expected, rel=1e-6)


class TestDiodeTransient:
    def test_junction_cap_delays_turn_on(self):
        model = DiodeModel(name="dcap", cj0=10e-12)
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0",
                        Pulse(0.0, 0.8, td=1e-9, tr=0.1e-9, tf=0.1e-9,
                              pw=1.0))
        ckt.add_resistor("Rs", "in", "d", 10e3)
        ckt.add_diode("D1", "d", "0", model=model)
        tr = transient_analysis(ckt, 2e-6, 2e-9)
        v = tr.v("d")
        # rises smoothly through RC, settles at the diode drop
        assert v[0] == pytest.approx(0.0, abs=1e-6)
        assert 0.3 < v[-1] < 0.7
        i_mid = np.argmin(np.abs(tr.times - 50e-9))
        assert v[i_mid] < v[-1]


class TestPmosBodyAtSupply:
    def test_pmos_source_follower(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.5)
        ckt.add_mosfet("MP", "0", "g", "s", "vdd", PMOS_180,
                       w=20e-6, l=1e-6)
        ckt.add_resistor("Rs", "vdd", "s", 20e3)
        op = operating_point(ckt)
        # source sits roughly |VGS| above the gate
        assert 0.9 < op.v("s") < 1.6


class TestOPReport:
    def test_report_contains_devices_and_nodes(self):
        ckt = Circuit("rpt")
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_resistor("RL", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", NMOS_180, w=10e-6, l=1e-6)
        text = op_report(operating_point(ckt))
        assert "v(d" in text
        assert "M1" in text
        assert "Vdd" in text
        assert "dissipation" in text
