"""Tests for the gain-margin measurement."""

import numpy as np
import pytest

from repro.spice import measure as M


def three_pole(freqs, a0=100.0, fp=1e4):
    h = a0 * np.ones(len(freqs), dtype=complex)
    for mult in (1.0, 10.0, 100.0):
        h = h / (1 + 1j * freqs / (fp * mult))
    return h


class TestGainMargin:
    def test_three_pole_has_margin(self):
        freqs = np.logspace(2, 9, 800)
        gm = M.gain_margin(freqs, three_pole(freqs))
        assert gm is not None
        # phase hits -180 deg (poles 2 and 3 each give ~ -90) well past
        # crossover for this gain, so the margin is positive
        assert gm > 0.0

    def test_higher_gain_smaller_margin(self):
        freqs = np.logspace(2, 9, 800)
        gm_lo = M.gain_margin(freqs, three_pole(freqs, a0=10.0))
        gm_hi = M.gain_margin(freqs, three_pole(freqs, a0=1000.0))
        assert gm_hi < gm_lo

    def test_single_pole_never_reaches_180(self):
        freqs = np.logspace(2, 9, 200)
        h = 100.0 / (1 + 1j * freqs / 1e4)
        assert M.gain_margin(freqs, h) is None

    def test_inverting_system_normalized(self):
        freqs = np.logspace(2, 9, 800)
        gm_pos = M.gain_margin(freqs, three_pole(freqs))
        gm_neg = M.gain_margin(freqs, -three_pole(freqs))
        assert gm_neg == pytest.approx(gm_pos, abs=0.5)

    def test_consistent_with_analytic_two_extra_poles(self):
        """For a0/( (1+jf/f1)(1+jf/f2)^2 ) with f2 = 100 f1, the -180
        crossing sits at ~f2 where both identical poles give -90 each;
        |H| there ~ a0 f1 / f2 / 2 -> margin ~ -20log10(a0/200)."""
        freqs = np.logspace(2, 10, 2000)
        a0 = 100.0
        f1, f2 = 1e4, 1e6
        h = a0 / ((1 + 1j * freqs / f1) * (1 + 1j * freqs / f2) ** 2)
        gm = M.gain_margin(freqs, h)
        expected = -M.db(a0 * f1 / f2 / 2.0)
        assert gm == pytest.approx(expected, abs=2.0)
