"""Tests targeting the DC homotopy ladder (gmin / source stepping)."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, PMOS_180, operating_point
from repro.spice.dc import _newton
from repro.spice.exceptions import ConvergenceError
from repro.spice.mna import StampContext


class TestStrategies:
    def test_linear_circuit_uses_plain_newton(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        assert operating_point(ckt).strategy == "newton"

    def test_hard_ldo_falls_back_and_converges(self):
        """A known Newton-hostile sizing (heavy divider + huge pass device)
        must be rescued by a fallback strategy and still satisfy KCL."""
        from repro.circuits.ldo import build_ldo

        params = {"L1": 1.0, "L2": 1.0, "L3": 2.0, "L4": 0.32, "L5": 2.0,
                  "W1": 60.0, "W2": 30.0, "W3": 2.0, "W4": 200.0, "W5": 2.0,
                  "R1": 2.0, "R2": 2.0, "C": 300.0,
                  "N1": 2, "N2": 20, "N3": 1}
        op = operating_point(build_ldo(params))
        assert op.strategy in ("newton", "gmin-stepping", "source-stepping")
        assert 1.5 < op.v("vout") < 2.1

    def test_warm_start_skips_homotopy(self):
        """Re-solving from the previous solution converges with plain
        Newton in a handful of iterations."""
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.7)
        ckt.add_resistor("RL", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 20e-6, 0.5e-6)
        first = operating_point(ckt)
        again = operating_point(ckt, x0=first.x)
        assert again.strategy == "newton"
        assert again.iterations <= 5

    def test_solution_independent_of_strategy(self):
        """gmin stepping from a terrible guess lands on the same OP as
        plain Newton from a good one."""
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_isource("Ib", "nd", "0", 20e-6)
        ckt.add_mosfet("MP1", "nd", "nd", "vdd", "vdd", PMOS_180,
                       20e-6, 1e-6)
        ckt.add_mosfet("MP2", "no", "nd", "vdd", "vdd", PMOS_180,
                       20e-6, 1e-6)
        ckt.add_resistor("RO", "no", "0", 20e3)
        op_a = operating_point(ckt)
        bad_guess = np.full(ckt.size, -3.0)
        op_b = operating_point(ckt, x0=bad_guess)
        np.testing.assert_allclose(op_a.x, op_b.x, atol=1e-6)


class TestNewtonInternals:
    def test_max_iterations_raises(self):
        """An oscillation-prone start with a tiny iteration cap raises
        ConvergenceError rather than looping forever."""
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_resistor("RL", "vdd", "d", 100e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", NMOS_180, 100e-6, 0.2e-6)
        with pytest.raises(ConvergenceError):
            _newton(ckt, np.full(ckt.size, 10.0),
                    StampContext(analysis="dc"), max_iter=2)

    def test_dv_clamp_limits_first_step(self):
        """From zero, a nonlinear circuit's first Newton update moves node
        voltages by at most DV_MAX."""
        from repro.spice.dc import DV_MAX

        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 10.0)  # would jump 10 V at once
        ckt.add_resistor("RL", "vdd", "d", 1e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", NMOS_180, 10e-6, 1e-6)
        # run exactly one iteration by catching the non-convergence
        try:
            _newton(ckt, np.zeros(ckt.size), StampContext(analysis="dc"),
                    max_iter=1)
        except ConvergenceError:
            pass  # expected; the clamp is exercised inside
