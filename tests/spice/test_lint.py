"""Tests for the netlist lint checks."""

import pytest

from repro.spice import Circuit, NMOS_180
from repro.spice.exceptions import NetlistError
from repro.spice.lint import assert_clean, lint_circuit


def clean_divider():
    ckt = Circuit()
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_resistor("R2", "out", "0", 1e3)
    return ckt


class TestCleanCircuits:
    def test_divider_clean(self):
        assert lint_circuit(clean_divider()) == []
        assert_clean(clean_divider())

    def test_ota_task_netlist_clean(self):
        from repro.circuits.ota import build_ota
        from tests.circuits.test_ota import GOOD

        assert lint_circuit(build_ota(GOOD)) == []

    def test_tia_task_netlist_clean(self):
        from repro.circuits.tia import build_tia
        from tests.circuits.test_tia import GOOD

        assert lint_circuit(build_tia(GOOD)) == []

    def test_ldo_task_netlist_clean(self):
        from repro.circuits.ldo import build_ldo
        from tests.circuits.test_ldo import GOOD

        assert lint_circuit(build_ldo(GOOD)) == []


class TestDetections:
    def test_empty_circuit(self):
        assert lint_circuit(Circuit()) == ["circuit has no elements"]

    def test_missing_ground(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "b", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        warnings = lint_circuit(ckt)
        assert any("no ground" in w for w in warnings)

    def test_floating_node(self):
        ckt = clean_divider()
        ckt.add_resistor("R3", "out", "dangling", 1e3)
        warnings = lint_circuit(ckt)
        assert any("dangling" in w and "floating" in w for w in warnings)

    def test_cap_isolated_island(self):
        ckt = clean_divider()
        ckt.add_capacitor("C1", "out", "island", 1e-12)
        ckt.add_resistor("R3", "island", "island2", 1e3)
        ckt.add_capacitor("C2", "island2", "0", 1e-12)
        warnings = lint_circuit(ckt)
        assert any("no DC path" in w for w in warnings)

    def test_mosfet_gate_needs_dc_path(self):
        """A gate driven only through a capacitor is flagged."""
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_resistor("RL", "vdd", "d", 1e4)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 1e-6, 1e-6)
        ckt.add_capacitor("Cin", "vdd", "g", 1e-12)
        warnings = lint_circuit(ckt)
        assert any("'g'" in w and "no DC path" in w for w in warnings)

    def test_voltage_source_loop(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_vsource("V2", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        warnings = lint_circuit(ckt)
        assert any("loop of ideal voltage sources" in w for w in warnings)

    def test_inductor_vsource_loop(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_inductor("L1", "a", "0", 1e-6)
        ckt.add_resistor("R1", "a", "0", 1e3)
        warnings = lint_circuit(ckt)
        assert any("loop" in w for w in warnings)

    def test_assert_clean_raises_with_details(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "b", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        with pytest.raises(NetlistError, match="no ground"):
            assert_clean(ckt)


class TestDeprecationShim:
    def test_import_emits_deprecation_warning(self):
        import importlib

        import repro.spice.lint as shim

        with pytest.warns(DeprecationWarning,
                          match="repro.analysis.erc"):
            importlib.reload(shim)

    def test_shim_reexports_match_erc(self):
        from repro.analysis import erc
        from repro.spice import lint as shim

        assert shim.lint_circuit is erc.lint_circuit
        assert shim.assert_clean is erc.assert_clean
        assert shim.run_erc is erc.run_erc
