"""Tests for the measurement helpers."""

import numpy as np
import pytest

from repro.spice import measure as M
from repro.spice.exceptions import AnalysisError


def single_pole(freqs, a0=1000.0, fp=1e4):
    return a0 / (1 + 1j * freqs / fp)


class TestDb:
    def test_db_of_unity(self):
        assert M.db(1.0) == pytest.approx(0.0)

    def test_db_of_1000(self):
        assert M.db(1000.0) == pytest.approx(60.0)

    def test_db_floor_no_inf(self):
        assert np.isfinite(M.db(0.0))


class TestUGF:
    def test_single_pole_ugf(self):
        freqs = np.logspace(1, 9, 400)
        h = single_pole(freqs)
        # UGF of a0/(1+jf/fp) is ~ a0*fp for a0 >> 1
        assert M.unity_gain_frequency(freqs, h) == pytest.approx(1e7, rel=0.02)

    def test_none_when_gain_below_unity(self):
        freqs = np.logspace(1, 6, 50)
        h = 0.5 * np.ones_like(freqs)
        assert M.unity_gain_frequency(freqs, h) is None

    def test_none_when_no_crossing_in_range(self):
        freqs = np.logspace(1, 3, 50)
        h = single_pole(freqs)  # crossover at 1e7, outside range
        assert M.unity_gain_frequency(freqs, h) is None


class TestPhaseMargin:
    def test_single_pole_pm_is_90(self):
        freqs = np.logspace(1, 9, 600)
        pm = M.phase_margin(freqs, single_pole(freqs))
        assert pm == pytest.approx(90.0, abs=2.0)

    def test_two_pole_pm_lower(self):
        freqs = np.logspace(1, 9, 600)
        h = single_pole(freqs) / (1 + 1j * freqs / 1e7)
        pm = M.phase_margin(freqs, h)
        assert 30.0 < pm < 60.0

    def test_inverting_amp_phase_normalized(self):
        freqs = np.logspace(1, 9, 600)
        pm_pos = M.phase_margin(freqs, single_pole(freqs))
        pm_neg = M.phase_margin(freqs, -single_pole(freqs))
        assert pm_neg == pytest.approx(pm_pos, abs=1.0)


class TestBandwidth:
    def test_single_pole_3db(self):
        freqs = np.logspace(1, 9, 500)
        bw = M.bandwidth_3db(freqs, single_pole(freqs, fp=1e5))
        assert bw == pytest.approx(1e5, rel=0.02)

    def test_none_when_flat(self):
        freqs = np.logspace(1, 6, 50)
        assert M.bandwidth_3db(freqs, np.ones_like(freqs)) is None


class TestGainAt:
    def test_interpolates(self):
        freqs = np.logspace(1, 5, 100)
        h = single_pole(freqs, a0=10.0, fp=1e8)
        g = M.gain_at(freqs, h, 1e3)
        assert abs(g) == pytest.approx(10.0, rel=1e-3)

    def test_out_of_range_raises(self):
        freqs = np.logspace(1, 5, 10)
        with pytest.raises(AnalysisError):
            M.gain_at(freqs, np.ones(10), 1e9)


class TestSettling:
    def test_exponential_settling(self):
        t = np.linspace(0, 10, 2000)
        y = 1 - np.exp(-t)
        ts = M.settling_time(t, y, final_value=1.0, tol=0.01)
        assert ts == pytest.approx(np.log(100), rel=0.05)

    def test_settled_from_start(self):
        t = np.linspace(0, 1, 100)
        y = np.ones_like(t)
        assert M.settling_time(t, y, final_value=1.0) == 0.0

    def test_never_settles_returns_none(self):
        t = np.linspace(0, 1, 100)
        y = t  # keeps moving, ends outside band of final+? final=1 at end
        assert M.settling_time(t, y, final_value=2.0) is None

    def test_t_start_offsets_measurement(self):
        t = np.linspace(0, 10, 2000)
        y = np.where(t < 2.0, 0.0, 1 - np.exp(-(t - 2.0)))
        ts = M.settling_time(t, y, final_value=1.0, tol=0.01, t_start=2.0)
        assert ts == pytest.approx(np.log(100), rel=0.05)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(AnalysisError):
            M.settling_time(np.zeros(5), np.zeros(4))


class TestOvershootRise:
    def test_overshoot_of_damped_sine(self):
        t = np.linspace(0, 20, 4000)
        zeta = 0.3
        wn = 1.0
        wd = wn * np.sqrt(1 - zeta**2)
        y = 1 - np.exp(-zeta * wn * t) * (
            np.cos(wd * t) + zeta / np.sqrt(1 - zeta**2) * np.sin(wd * t))
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert M.overshoot(t, y) == pytest.approx(expected, rel=0.05)

    def test_no_overshoot_monotone(self):
        t = np.linspace(0, 5, 500)
        y = 1 - np.exp(-t)
        assert M.overshoot(t, y) < 0.02

    def test_rise_time_exponential(self):
        t = np.linspace(0, 10, 5000)
        y = 1 - np.exp(-t)
        rt = M.rise_time(t, y)
        assert rt == pytest.approx(np.log(9), rel=0.1)

    def test_rise_time_flat_returns_none(self):
        t = np.linspace(0, 1, 10)
        assert M.rise_time(t, np.zeros(10)) is None
