"""Unit tests for the EKV MOSFET and diode models."""

import numpy as np
import pytest

from repro.spice.models import (
    DiodeModel,
    MosfetModel,
    NMOS_180,
    PMOS_180,
    UT_ROOM,
    ekv_f,
    ekv_f_prime,
)


class TestEKVFunction:
    def test_strong_inversion_limit(self):
        """F(u) -> (u/2)^2 for large u."""
        assert ekv_f(40.0) == pytest.approx(400.0, rel=1e-6)

    def test_weak_inversion_limit(self):
        """F(u) -> exp(u) for very negative u."""
        assert ekv_f(-20.0) == pytest.approx(np.exp(-20.0), rel=1e-3)

    def test_monotone_increasing(self):
        us = np.linspace(-30, 30, 200)
        vals = [ekv_f(u) for u in us]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_derivative_matches_finite_diff(self):
        for u in [-10.0, -1.0, 0.0, 1.0, 10.0]:
            eps = 1e-6
            fd = (ekv_f(u + eps) - ekv_f(u - eps)) / (2 * eps)
            assert ekv_f_prime(u) == pytest.approx(fd, rel=1e-5)

    def test_no_overflow_at_extremes(self):
        assert np.isfinite(ekv_f(1000.0))
        assert np.isfinite(ekv_f(-1000.0))


class TestMosfetDC:
    def test_off_below_threshold(self):
        info = NMOS_180.evaluate(vg=0.0, vd=1.8, vs=0.0, vb=0.0,
                                 w=10e-6, l=1e-6)
        assert abs(info["id"]) < 1e-9

    def test_saturation_current_scales_with_w(self):
        a = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=10e-6, l=1e-6)
        b = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=20e-6, l=1e-6)
        assert b["id"] == pytest.approx(2 * a["id"], rel=1e-2)

    def test_square_law_strong_inversion(self):
        """Id ~ (KP/2)(W/L) vov^2 in strong inversion saturation."""
        vov = 0.5
        info = NMOS_180.evaluate(NMOS_180.vto + vov, 1.8, 0.0, 0.0,
                                 w=10e-6, l=1e-6)
        # EKV uses vp=(vg-vto)/n, so the effective overdrive is vov/n.
        expected = 0.5 * NMOS_180.kp * 10 * (vov) ** 2 / NMOS_180.n
        assert info["id"] == pytest.approx(expected, rel=0.35)

    def test_pmos_current_sign(self):
        """PMOS with negative Vgs/Vds conducts with negative drain current
        (current flows source -> drain)."""
        info = PMOS_180.evaluate(vg=0.8, vd=0.2, vs=1.8, vb=1.8,
                                 w=10e-6, l=1e-6)
        assert info["id"] < -1e-6

    def test_symmetric_at_vds_zero(self):
        info = NMOS_180.evaluate(1.2, 0.5, 0.5, 0.0, w=10e-6, l=1e-6)
        assert abs(info["id"]) < 1e-9

    def test_reverse_conduction(self):
        """Swapping D and S flips the current sign (EKV symmetry)."""
        fwd = NMOS_180.evaluate(1.2, 1.0, 0.2, 0.0, w=10e-6, l=1e-6)
        rev = NMOS_180.evaluate(1.2, 0.2, 1.0, 0.0, w=10e-6, l=1e-6)
        assert fwd["id"] == pytest.approx(-rev["id"], rel=1e-6)

    def test_gm_positive_in_saturation(self):
        info = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=10e-6, l=1e-6)
        assert info["gm"] > 0
        assert info["gds"] > 0

    def test_conductances_match_finite_diff(self):
        w, l = 10e-6, 0.5e-6
        bias = dict(vg=0.9, vd=1.2, vs=0.1, vb=0.0)
        info = NMOS_180.evaluate(**bias, w=w, l=l)
        eps = 1e-6
        for key, grad in [("vg", "gm"), ("vd", "gds"), ("vs", "gms"),
                          ("vb", "gmb")]:
            hi = dict(bias)
            hi[key] += eps
            lo = dict(bias)
            lo[key] -= eps
            fd = (NMOS_180.evaluate(**hi, w=w, l=l)["id"]
                  - NMOS_180.evaluate(**lo, w=w, l=l)["id"]) / (2 * eps)
            assert info[grad] == pytest.approx(fd, rel=1e-4, abs=1e-12), key

    def test_pmos_conductances_match_finite_diff(self):
        w, l = 20e-6, 1e-6
        bias = dict(vg=0.8, vd=0.3, vs=1.8, vb=1.8)
        info = PMOS_180.evaluate(**bias, w=w, l=l)
        eps = 1e-6
        for key, grad in [("vg", "gm"), ("vd", "gds"), ("vs", "gms"),
                          ("vb", "gmb")]:
            hi = dict(bias)
            hi[key] += eps
            lo = dict(bias)
            lo[key] -= eps
            fd = (PMOS_180.evaluate(**hi, w=w, l=l)["id"]
                  - PMOS_180.evaluate(**lo, w=w, l=l)["id"]) / (2 * eps)
            assert info[grad] == pytest.approx(fd, rel=1e-4, abs=1e-12), key

    def test_clm_increases_current_with_vds(self):
        lo = NMOS_180.evaluate(1.0, 0.9, 0.0, 0.0, w=10e-6, l=0.18e-6)
        hi = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=10e-6, l=0.18e-6)
        assert hi["id"] > lo["id"] * 1.01

    def test_clm_weaker_at_long_channel(self):
        short = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=10e-6, l=0.18e-6)
        long_ = NMOS_180.evaluate(1.0, 1.8, 0.0, 0.0, w=10e-6, l=2e-6)
        r_short = short["gds"] / short["id"]
        r_long = long_["gds"] / long_["id"]
        assert r_short > 3 * r_long

    def test_invalid_polarity_raises(self):
        with pytest.raises(ValueError):
            MosfetModel(name="bad", polarity=0)

    def test_nonphysical_params_raise(self):
        with pytest.raises(ValueError):
            MosfetModel(name="bad", polarity=1, vto=-0.1)


class TestMosfetCaps:
    def test_cgs_scales_with_area(self):
        a = NMOS_180.capacitances(10e-6, 1e-6)
        b = NMOS_180.capacitances(20e-6, 2e-6)
        # intrinsic part scales 4x, overlap 2x
        assert b["cgs"] > 3 * a["cgs"]

    def test_all_caps_positive(self):
        caps = NMOS_180.capacitances(1e-6, 0.18e-6)
        assert all(v > 0 for v in caps.values())


class TestMosfetNoise:
    def test_thermal_psd(self):
        gm = 1e-3
        psd = NMOS_180.thermal_noise_psd(gm)
        assert psd == pytest.approx(4 * 1.380649e-23 * NMOS_180.temp
                                    * (2 / 3) * gm, rel=1e-9)

    def test_thermal_never_negative(self):
        assert NMOS_180.thermal_noise_psd(-1.0) == 0.0

    def test_flicker_scales_inverse_f(self):
        a = NMOS_180.flicker_noise_psd(1e-4, 10e-6, 1e-6, f=1e3)
        b = NMOS_180.flicker_noise_psd(1e-4, 10e-6, 1e-6, f=1e6)
        assert a == pytest.approx(1e3 * b, rel=1e-9)

    def test_flicker_smaller_for_big_device(self):
        small = NMOS_180.flicker_noise_psd(1e-4, 1e-6, 0.18e-6, f=1e3)
        big = NMOS_180.flicker_noise_psd(1e-4, 100e-6, 2e-6, f=1e3)
        assert big < small

    def test_flicker_bad_freq_raises(self):
        with pytest.raises(ValueError):
            NMOS_180.flicker_noise_psd(1e-4, 1e-6, 1e-6, f=0.0)


class TestDiode:
    def test_zero_bias_zero_current(self):
        i, g = DiodeModel(name="d").evaluate(0.0)
        assert i == pytest.approx(0.0)
        assert g > 0

    def test_exponential_region(self):
        d = DiodeModel(name="d")
        i1, _ = d.evaluate(0.5)
        i2, _ = d.evaluate(0.5 + d.ut * np.log(10))
        assert i2 == pytest.approx(10 * i1, rel=1e-2)

    def test_linearized_above_vcrit(self):
        d = DiodeModel(name="d", v_crit=0.7)
        i1, g1 = d.evaluate(0.8)
        i2, g2 = d.evaluate(0.9)
        assert g2 == pytest.approx(g1, rel=1e-9)  # constant conductance
        assert i2 - i1 == pytest.approx(g1 * 0.1, rel=1e-9)

    def test_no_overflow_at_huge_voltage(self):
        i, g = DiodeModel(name="d").evaluate(100.0)
        assert np.isfinite(i) and np.isfinite(g)

    def test_ut_room_value(self):
        assert UT_ROOM == pytest.approx(0.02585, rel=1e-2)
