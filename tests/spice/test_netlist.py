"""Unit tests for Circuit construction and MNA assembly."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180
from repro.spice.exceptions import NetlistError
from repro.spice.mna import MNASystem, StampContext


class TestNodes:
    def test_ground_aliases(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.add_resistor("R2", "b", "gnd", 1.0)
        ckt.add_resistor("R3", "c", "GND", 1.0)
        assert ckt.node_index("0") == -1
        assert ckt.node_index("gnd") == -1
        assert ckt.n_nodes == 3

    def test_node_indices_in_creation_order(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "x", "y", 1.0)
        assert ckt.node_index("x") == 0
        assert ckt.node_index("y") == 1

    def test_unknown_node_raises(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            ckt.node_index("zzz")

    def test_node_names_sorted_by_index(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "x", "y", 1.0)
        ckt.add_resistor("R2", "y", "z", 1.0)
        assert ckt.node_names() == ["x", "y", "z"]


class TestElements:
    def test_duplicate_name_raises(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            ckt.add_resistor("R1", "b", "0", 1.0)

    def test_lookup(self):
        ckt = Circuit()
        r = ckt.add_resistor("R1", "a", "0", 1.0)
        assert ckt["R1"] is r
        assert "R1" in ckt
        assert "R2" not in ckt

    def test_missing_lookup_raises(self):
        with pytest.raises(NetlistError):
            Circuit()["nope"]

    def test_branch_counting(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_vsource("V2", "b", "0", 1.0)
        ckt.add_inductor("L1", "a", "b", 1e-9)
        assert ckt.n_branches == 3
        assert ckt.size == ckt.n_nodes + 3

    def test_is_nonlinear(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        assert not ckt.is_nonlinear
        ckt.add_mosfet("M1", "a", "a", "0", "0", NMOS_180, 1e-6, 1e-6)
        assert ckt.is_nonlinear


class TestAssembly:
    def test_resistor_stamps(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "b", 2.0)
        sys = ckt.assemble(np.zeros(2), StampContext(gmin=0.0))
        expected = np.array([[0.5, -0.5], [-0.5, 0.5]])
        np.testing.assert_allclose(sys.A, expected)

    def test_gmin_added_on_node_diagonals_only(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        sys = ckt.assemble(np.zeros(2), StampContext(gmin=1e-3))
        assert sys.A[0, 0] == pytest.approx(1e-3)
        # branch row diagonal untouched
        assert sys.A[1, 1] == 0.0

    def test_netlist_text_lists_everything(self):
        ckt = Circuit("demo")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1e3)
        ckt.add_mosfet("M1", "b", "a", "0", "0", NMOS_180, 1e-6, 1e-6, m=4)
        text = ckt.netlist_text()
        assert "* demo" in text
        assert "V1" in text and "R1" in text and "M1" in text
        assert "m=4" in text
        assert text.endswith(".end")


class TestMNASystem:
    def test_ground_stamps_ignored(self):
        sys = MNASystem(2, 0)
        sys.add_a(-1, 0, 5.0)
        sys.add_a(0, -1, 5.0)
        sys.add_z(-1, 5.0)
        assert np.all(sys.A == 0.0)
        assert np.all(sys.z == 0.0)

    def test_conductance_stamp_pattern(self):
        sys = MNASystem(2, 0)
        sys.stamp_conductance(0, 1, 3.0)
        np.testing.assert_allclose(sys.A, [[3.0, -3.0], [-3.0, 3.0]])

    def test_current_stamp_direction(self):
        sys = MNASystem(2, 0)
        sys.stamp_current(0, 1, 1e-3)
        assert sys.z[0] == pytest.approx(-1e-3)
        assert sys.z[1] == pytest.approx(1e-3)

    def test_complex_system(self):
        sys = MNASystem(1, 0, complex_valued=True)
        sys.add_a(0, 0, 1j)
        assert sys.A.dtype == complex
