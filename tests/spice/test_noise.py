"""Noise analysis tests against analytic PSDs."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, noise_analysis, operating_point
from repro.spice.ac import logspace_frequencies
from repro.spice.exceptions import AnalysisError
from repro.spice.models import BOLTZMANN, ROOM_TEMP

KT4 = 4 * BOLTZMANN * ROOM_TEMP


class TestResistorNoise:
    def test_single_resistor_psd(self):
        """Voltage noise of R to ground: S_v = 4kTR."""
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_resistor("Rs", "in", "out", 1e30)  # irrelevant huge isolator
        ckt.add_resistor("R", "out", "0", 10e3)
        freqs = np.array([1e3, 1e6])
        nz = noise_analysis(ckt, "out", freqs)
        expected = KT4 * 10e3
        np.testing.assert_allclose(nz.output_psd, expected, rtol=1e-3)

    def test_parallel_resistors_reduce_noise(self):
        """Two 20k in parallel == one 10k: S_v = 4kT * 10k."""
        ckt = Circuit()
        ckt.add_resistor("R1", "out", "0", 20e3)
        ckt.add_resistor("R2", "out", "0", 20e3)
        nz = noise_analysis(ckt, "out", np.array([1e4]))
        assert nz.output_psd[0] == pytest.approx(KT4 * 10e3, rel=1e-3)

    def test_rc_filtered_noise_integrates_to_kt_over_c(self):
        """The classic kT/C result: total RC-filtered resistor noise."""
        c = 1e-12
        ckt = Circuit()
        ckt.add_resistor("R", "out", "0", 1e3)
        ckt.add_capacitor("C", "out", "0", c)
        freqs = logspace_frequencies(1e2, 1e12, 20)
        nz = noise_analysis(ckt, "out", freqs)
        total = nz.integrated_output_noise() ** 2
        expected = BOLTZMANN * ROOM_TEMP / c
        assert total == pytest.approx(expected, rel=0.05)

    def test_contributions_labelled(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "out", "0", 1e3)
        nz = noise_analysis(ckt, "out", np.array([1e3]))
        assert "R1:thermal" in nz.contributions

    def test_contributions_sum_to_total(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "out", "0", 1e3)
        ckt.add_resistor("R2", "out", "a", 2e3)
        ckt.add_resistor("R3", "a", "0", 3e3)
        freqs = np.array([1e3, 1e5])
        nz = noise_analysis(ckt, "out", freqs)
        total = sum(nz.contributions.values())
        np.testing.assert_allclose(total, nz.output_psd, rtol=1e-9)


class TestMosfetNoise:
    def _cs_amp(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.65, ac=1.0)
        ckt.add_resistor("RL", "vdd", "d", 20e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, w=10e-6, l=1e-6)
        return ckt

    def test_thermal_floor_at_high_freq(self):
        """At high frequency (above the flicker corner) the output PSD is
        (4kT gamma gm + 4kT/RL) * Rout^2."""
        ckt = self._cs_amp()
        op = operating_point(ckt)
        info = op.element_info("M1")
        rout = 1.0 / (1.0 / 20e3 + info["gds"])
        expected = (NMOS_180.thermal_noise_psd(info["gm"])
                    + KT4 / 20e3) * rout**2
        nz = noise_analysis(ckt, "d", np.array([3e7]), x_op=op)
        # device caps shunt a little; allow 20%
        assert nz.output_psd[0] == pytest.approx(expected, rel=0.2)

    def test_flicker_dominates_low_freq(self):
        ckt = self._cs_amp()
        nz = noise_analysis(ckt, "d", np.array([10.0, 1e7]))
        assert nz.output_psd[0] > 10 * nz.output_psd[1]

    def test_input_referred_uses_gain(self):
        ckt = self._cs_amp()
        op = operating_point(ckt)
        nz = noise_analysis(ckt, "d", np.array([1e5]), input_source="Vg",
                            x_op=op)
        gain2 = np.abs(nz.gain[0]) ** 2
        assert nz.input_referred_psd[0] == pytest.approx(
            nz.output_psd[0] / gain2, rel=1e-9)

    def test_no_input_source_input_referred_raises(self):
        ckt = self._cs_amp()
        nz = noise_analysis(ckt, "d", np.array([1e5]))
        with pytest.raises(AnalysisError):
            _ = nz.input_referred_psd


class TestValidation:
    def test_ground_output_raises(self):
        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            noise_analysis(ckt, "0", np.array([1e3]))

    def test_unknown_input_source_raises(self):
        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            noise_analysis(ckt, "a", np.array([1e3]), input_source="nope")

    def test_bad_freqs_raise(self):
        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            noise_analysis(ckt, "a", np.array([]))

    def test_integration_band_needs_points(self):
        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1e3)
        nz = noise_analysis(ckt, "a", np.array([1e3, 1e4]))
        with pytest.raises(AnalysisError):
            nz.integrated_output_noise(f_lo=1e6, f_hi=1e7)
