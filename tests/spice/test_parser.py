"""Tests for the SPICE netlist parser."""

import numpy as np
import pytest

from repro.spice import Circuit, ac_analysis, operating_point, transient_analysis
from repro.spice.exceptions import NetlistError
from repro.spice.parser import parse_netlist
from repro.spice.waveforms import PieceWiseLinear, Pulse, Sine


class TestBasicElements:
    def test_divider(self):
        ckt = parse_netlist("""
        * divider
        V1 in 0 DC 2
        R1 in out 1k
        R2 out 0 1k
        .end
        """)
        assert operating_point(ckt).v("out") == pytest.approx(1.0, rel=1e-6)

    def test_title_line_convention(self):
        ckt = parse_netlist("my amplifier deck\nR1 a 0 1k\n.end")
        assert ckt.title == "my amplifier deck"
        assert "R1" in ckt

    def test_si_suffixes(self):
        ckt = parse_netlist("""
        R1 a 0 2.2k
        C1 a 0 100n
        L1 a b 10u
        V1 b 0 1
        """)
        assert ckt["R1"].resistance == pytest.approx(2200.0)
        assert ckt["C1"].capacitance == pytest.approx(1e-7)
        assert ckt["L1"].inductance == pytest.approx(1e-5)

    def test_continuation_lines(self):
        ckt = parse_netlist("""
        V1 in 0
        + DC 3
        R1 in 0 1k
        """)
        assert operating_point(ckt).v("in") == pytest.approx(3.0)

    def test_comments_stripped(self):
        ckt = parse_netlist("""
        * full-line comment
        R1 a 0 1k $ trailing comment
        V1 a 0 1
        """)
        assert len(ckt.elements) == 2

    def test_controlled_sources(self):
        ckt = parse_netlist("""
        V1 in 0 1
        E1 out 0 in 0 5
        RL out 0 1k
        G1 0 x in 0 1m
        RX x 0 1k
        """)
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(5.0, rel=1e-6)
        assert op.v("x") == pytest.approx(1.0, rel=1e-6)


class TestSources:
    def test_ac_spec(self):
        ckt = parse_netlist("""
        V1 in 0 DC 0 AC 1
        R1 in out 1k
        C1 out 0 1n
        """)
        ac = ac_analysis(ckt, np.array([1e3]))
        assert abs(ac.v("out")[0]) == pytest.approx(1.0, rel=1e-2)

    def test_pulse_source(self):
        ckt = parse_netlist("""
        V1 in 0 PULSE(0 1 1n 1n 1n 100n 0)
        R1 in out 1k
        C1 out 0 1p
        """)
        src = ckt["V1"]
        assert isinstance(src.waveform, Pulse)
        tr = transient_analysis(ckt, 50e-9, 0.5e-9)
        assert tr.v("out")[-1] == pytest.approx(1.0, abs=0.02)

    def test_sin_source(self):
        ckt = parse_netlist("V1 a 0 SIN(0.9 0.1 1meg)\nR1 a 0 1k")
        assert isinstance(ckt["V1"].waveform, Sine)
        assert ckt["V1"].waveform.freq == pytest.approx(1e6)

    def test_pwl_source(self):
        ckt = parse_netlist("V1 a 0 PWL(0 0 1u 1 2u 0)\nR1 a 0 1k")
        assert isinstance(ckt["V1"].waveform, PieceWiseLinear)

    def test_current_source(self):
        ckt = parse_netlist("""
        I1 0 a DC 1m
        R1 a 0 1k
        """)
        assert operating_point(ckt).v("a") == pytest.approx(1.0, rel=1e-6)


class TestDevices:
    def test_mosfet_with_builtin_model(self):
        ckt = parse_netlist("""
        Vdd vdd 0 1.8
        Vg g 0 0.9
        RL vdd d 10k
        M1 d g 0 0 nmos180 W=10u L=1u
        """)
        op = operating_point(ckt)
        assert op.element_info("M1")["id"] > 1e-6

    def test_mosfet_with_custom_model_card(self):
        ckt = parse_netlist("""
        .model mynmos nmos vto=0.6 kp=200u
        Vdd d 0 1.8
        Vg g 0 1.0
        M1 d g 0 0 mynmos W=10u L=1u
        """)
        m = ckt["M1"].model
        assert m.vto == pytest.approx(0.6)
        assert m.kp == pytest.approx(2e-4)

    def test_pmos_model_card_polarity(self):
        ckt = parse_netlist("""
        .model myp pmos vto=0.5
        Vdd s 0 1.8
        M1 d g s s myp W=5u L=0.5u
        Rload d 0 10k
        Vg g 0 1.0
        """)
        assert ckt["M1"].model.polarity == -1

    def test_multiplier(self):
        ckt = parse_netlist("""
        Vd d 0 1
        M1 d d 0 0 nmos180 W=1u L=1u M=4
        """)
        assert ckt["M1"].m == 4

    def test_diode_with_model(self):
        ckt = parse_netlist("""
        .model dx d is=1e-15 n=1.2
        V1 a 0 0.7
        R1 a b 1k
        D1 b 0 dx
        """)
        assert ckt["D1"].model.n == pytest.approx(1.2)
        op = operating_point(ckt)
        assert 0.0 < op.v("b") < 0.7


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("")

    def test_unknown_element_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 1k\nQ1 c b e bjt")

    def test_unknown_model_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("M1 d g 0 0 nomodel W=1u L=1u\nV1 d 0 1")

    def test_missing_geometry_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("M1 d g 0 0 nmos180 W=1u\nV1 d 0 1")

    def test_malformed_value_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 banana\nV1 a 0 1")

    def test_unsupported_control_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 1k\n.tran 1n 1u")

    def test_orphan_continuation_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("+ DC 5\nR1 a 0 1k")


class TestRoundTrip:
    def test_parse_of_generated_ota_text_equivalent(self):
        """The OTA built programmatically and a hand-written deck of the
        same topology agree on the operating point."""
        deck = """
        two-stage ota core (first stage only)
        Vdd vdd 0 1.8
        Vp inn 0 0.9
        Vn inp 0 0.9
        Rb vdd nb 57.5k
        MB nb nb 0 0 nmos180 W=20u L=1u
        M5 tail nb 0 0 nmos180 W=20u L=1u
        M1a d1 inp tail 0 nmos180 W=60u L=0.4u
        M1b out1 inn tail 0 nmos180 W=60u L=0.4u
        M3 d1 d1 vdd vdd pmos180 W=15u L=0.5u
        M4 out1 d1 vdd vdd pmos180 W=15u L=0.5u
        .end
        """
        parsed = operating_point(parse_netlist(deck))
        built = Circuit("ref")
        built.add_vsource("Vdd", "vdd", "0", 1.8)
        built.add_vsource("Vp", "inn", "0", 0.9)
        built.add_vsource("Vn", "inp", "0", 0.9)
        built.add_resistor("Rb", "vdd", "nb", 57.5e3)
        from repro.spice import NMOS_180, PMOS_180

        built.add_mosfet("MB", "nb", "nb", "0", "0", NMOS_180, 20e-6, 1e-6)
        built.add_mosfet("M5", "tail", "nb", "0", "0", NMOS_180, 20e-6, 1e-6)
        built.add_mosfet("M1a", "d1", "inp", "tail", "0", NMOS_180,
                         60e-6, 0.4e-6)
        built.add_mosfet("M1b", "out1", "inn", "tail", "0", NMOS_180,
                         60e-6, 0.4e-6)
        built.add_mosfet("M3", "d1", "d1", "vdd", "vdd", PMOS_180,
                         15e-6, 0.5e-6)
        built.add_mosfet("M4", "out1", "d1", "vdd", "vdd", PMOS_180,
                         15e-6, 0.5e-6)
        ref = operating_point(built)
        for node in ("nb", "tail", "d1", "out1"):
            assert parsed.v(node) == pytest.approx(ref.v(node), abs=1e-6)
