"""Direct tests for analysis result containers."""

import numpy as np
import pytest

from repro.spice import Circuit, ac_analysis, dc_sweep, operating_point, transient_analysis
from repro.spice.exceptions import AnalysisError
from repro.spice.waveforms import Pulse


@pytest.fixture
def divider():
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", 2.0, ac=1.0)
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_resistor("R2", "out", "0", 1e3)
    return ckt


class TestOPResult:
    def test_ground_reads_zero(self, divider):
        assert operating_point(divider).v("0") == 0.0
        assert operating_point(divider).v("gnd") == 0.0

    def test_as_dict_covers_all_nodes(self, divider):
        d = operating_point(divider).as_dict()
        assert set(d) == {"in", "out"}

    def test_branch_current_requires_vsource(self, divider):
        op = operating_point(divider)
        with pytest.raises(AnalysisError):
            op.branch_current("R1")

    def test_strategy_recorded(self, divider):
        assert operating_point(divider).strategy == "newton"


class TestSweepResult:
    def test_branch_current_per_point(self, divider):
        sweep = dc_sweep(divider, "V1", np.array([1.0, 2.0]))
        i = sweep.branch_current("V1")
        np.testing.assert_allclose(i, [-0.5e-3, -1e-3], rtol=1e-6)

    def test_ground_column_zeros(self, divider):
        sweep = dc_sweep(divider, "V1", np.array([1.0, 2.0]))
        np.testing.assert_array_equal(sweep.v("0"), [0.0, 0.0])


class TestACResult:
    def test_differential_transfer(self, divider):
        ac = ac_analysis(divider, np.array([1e3]))
        diff = ac.transfer("in", "out")
        assert abs(diff[0]) == pytest.approx(0.5, rel=1e-6)

    def test_ground_voltage_zero(self, divider):
        ac = ac_analysis(divider, np.array([1e3]))
        np.testing.assert_array_equal(ac.v("0"), [0.0 + 0.0j])


class TestTransientResult:
    def test_branch_current_waveform(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0",
                        Pulse(0.0, 1.0, td=1e-9, tr=1e-12, tf=1e-12, pw=1.0))
        ckt.add_resistor("R1", "a", "0", 1e3)
        tr = transient_analysis(ckt, 10e-9, 0.5e-9)
        i = tr.branch_current("V1")
        assert i[0] == pytest.approx(0.0, abs=1e-9)
        assert i[-1] == pytest.approx(-1e-3, rel=1e-6)

    def test_times_monotone(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1e3)
        tr = transient_analysis(ckt, 5e-9, 1e-9)
        assert np.all(np.diff(tr.times) > 0)
