"""Tests for hierarchical .subckt support in the parser."""

import numpy as np
import pytest

from repro.spice import operating_point
from repro.spice.exceptions import NetlistError
from repro.spice.parser import parse_netlist


class TestFlattening:
    def test_simple_instantiation(self):
        ckt = parse_netlist("""
        .subckt div in out
        R1 in out 1k
        R2 out 0 1k
        .ends
        V1 a 0 2
        X1 a mid div
        """)
        assert "X1.R1" in ckt
        assert "X1.R2" in ckt
        assert operating_point(ckt).v("mid") == pytest.approx(1.0, rel=1e-6)

    def test_internal_nodes_prefixed(self):
        ckt = parse_netlist("""
        .subckt twostage in out
        R1 in internal 1k
        R2 internal out 1k
        .ends
        V1 a 0 1
        RL b 0 1k
        X1 a b twostage
        """)
        assert ckt.node_index("X1.internal") >= 0

    def test_two_instances_isolated(self):
        ckt = parse_netlist("""
        .subckt half in out
        R1 in out 1k
        R2 out 0 1k
        .ends
        V1 a 0 4
        X1 a m1 half
        X2 m1 m2 half
        """)
        op = operating_point(ckt)
        # cascade of loaded dividers; just verify both exist & distinct
        assert op.v("m1") > op.v("m2") > 0.0
        assert "X1.R1" in ckt and "X2.R1" in ckt

    def test_ground_not_remapped(self):
        ckt = parse_netlist("""
        .subckt gres a
        R1 a 0 1k
        .ends
        V1 x 0 1
        X1 x gres
        """)
        op = operating_point(ckt)
        assert op.branch_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_nested_subcircuits(self):
        ckt = parse_netlist("""
        .subckt leaf a b
        R1 a b 1k
        .ends
        .subckt branch a b
        X1 a mid leaf
        X2 mid b leaf
        .ends
        V1 p 0 1
        X9 p 0 branch
        """)
        assert "X9.X1.R1" in ckt
        assert "X9.X2.R1" in ckt
        op = operating_point(ckt)
        # two 1k in series across 1 V -> 0.5 mA
        assert op.branch_current("V1") == pytest.approx(-0.5e-3, rel=1e-6)

    def test_mosfet_in_subckt_uses_global_model(self):
        ckt = parse_netlist("""
        .subckt stage in out vdd
        M1 out in 0 0 nmos180 W=10u L=1u
        RL vdd out 10k
        .ends
        Vdd vdd 0 1.8
        Vin g 0 0.7
        X1 g d vdd stage
        """)
        op = operating_point(ckt)
        assert op.element_info("X1.M1")["id"] > 1e-7


class TestErrors:
    def test_unknown_subckt_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("V1 a 0 1\nX1 a 0 nosuch")

    def test_port_count_mismatch_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("""
            .subckt d2 a b
            R1 a b 1k
            .ends
            V1 x 0 1
            X1 x d2
            """)

    def test_unterminated_subckt_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist(".subckt foo a\nR1 a 0 1k")

    def test_stray_ends_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a 0 1k\n.ends foo\nV1 a 0 1")

    def test_recursive_subckt_raises(self):
        with pytest.raises(NetlistError):
            parse_netlist("""
            .subckt loop a
            X1 a loop
            .ends
            V1 x 0 1
            X1 x loop
            """)
