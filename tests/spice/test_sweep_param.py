"""Tests for generic element-parameter sweeps."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180
from repro.spice.exceptions import AnalysisError
from repro.spice.sweep import param_sweep


def divider():
    ckt = Circuit()
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "out", 1e3)
    ckt.add_resistor("R2", "out", "0", 1e3)
    return ckt


class TestResistorSweep:
    def test_divider_formula(self):
        vs = param_sweep(divider(), "R2", "resistance",
                         np.array([1e3, 2e3, 4e3]),
                         measure=lambda op: op.v("out"))
        np.testing.assert_allclose(vs, [0.5, 2 / 3, 0.8], rtol=1e-6)

    def test_value_restored(self):
        ckt = divider()
        param_sweep(ckt, "R2", "resistance", np.array([5e3]),
                    measure=lambda op: op.v("out"))
        assert ckt["R2"].resistance == 1e3

    def test_no_restore_option(self):
        ckt = divider()
        param_sweep(ckt, "R2", "resistance", np.array([5e3]),
                    measure=lambda op: op.v("out"), restore=False)
        assert ckt["R2"].resistance == 5e3

    def test_default_measure_returns_solution_vectors(self):
        out = param_sweep(divider(), "R2", "resistance",
                          np.array([1e3, 2e3]))
        assert out.shape[0] == 2


class TestMosfetSweep:
    def _amp(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.6)
        ckt.add_resistor("RL", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 10e-6, 1e-6)
        return ckt

    def test_width_sweep_increases_current(self):
        ids = param_sweep(self._amp(), "M1", "w",
                          np.array([5e-6, 20e-6, 80e-6]),
                          measure=lambda op: op.element_info("M1")["id"])
        assert ids[0] < ids[1] < ids[2]

    def test_cap_cache_refreshed(self):
        ckt = self._amp()
        caps_before = dict(ckt["M1"]._caps)
        param_sweep(ckt, "M1", "w", np.array([100e-6]),
                    measure=lambda op: 0.0, restore=False)
        assert ckt["M1"]._caps["cgs"] > caps_before["cgs"]

    def test_length_sweep_reduces_current(self):
        ids = param_sweep(self._amp(), "M1", "l",
                          np.array([0.5e-6, 2e-6]),
                          measure=lambda op: op.element_info("M1")["id"])
        assert ids[1] < ids[0]


class TestValidation:
    def test_unknown_attr_raises(self):
        with pytest.raises(AnalysisError):
            param_sweep(divider(), "R2", "ohms", np.array([1.0]))

    def test_empty_values_raise(self):
        with pytest.raises(AnalysisError):
            param_sweep(divider(), "R2", "resistance", np.array([]))

    def test_restore_even_on_failure(self):
        ckt = divider()
        with pytest.raises(Exception):
            # R = 0 makes the conductance infinite -> solve must fail.
            param_sweep(ckt, "R2", "resistance", np.array([0.0, 1e3]),
                        measure=lambda op: op.v("out"))
        assert ckt["R2"].resistance == 1e3
