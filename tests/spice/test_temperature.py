"""Tests for first-order temperature modelling."""

import pytest

from repro.spice import Circuit, NMOS_180, operating_point
from repro.spice.models import BOLTZMANN, ELEMENTARY_CHARGE


class TestModelTemperature:
    def test_ut_tracks_temperature(self):
        hot = NMOS_180.at_temperature(125.0)
        assert hot.ut == pytest.approx(
            BOLTZMANN * (125.0 + 273.15) / ELEMENTARY_CHARGE, rel=1e-9)
        assert hot.ut > NMOS_180.ut

    def test_mobility_degrades_when_hot(self):
        hot = NMOS_180.at_temperature(125.0)
        assert hot.kp < NMOS_180.kp

    def test_vto_drops_when_hot(self):
        hot = NMOS_180.at_temperature(125.0)
        assert hot.vto < NMOS_180.vto

    def test_cold_reverses(self):
        cold = NMOS_180.at_temperature(-40.0)
        assert cold.kp > NMOS_180.kp
        assert cold.vto > NMOS_180.vto

    def test_room_temp_is_near_identity(self):
        room = NMOS_180.at_temperature(27.0)
        assert room.kp == pytest.approx(NMOS_180.kp, rel=1e-2)
        assert room.vto == pytest.approx(NMOS_180.vto, abs=1e-3)

    def test_name_tagged(self):
        assert "125" in NMOS_180.at_temperature(125.0).name


class TestCircuitTemperature:
    def _current(self, model, vgs):
        ckt = Circuit()
        ckt.add_vsource("Vd", "d", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", vgs)
        ckt.add_mosfet("M1", "d", "g", "0", "0", model, 10e-6, 1e-6)
        return operating_point(ckt).element_info("M1")["id"]

    def test_strong_inversion_current_drops_when_hot(self):
        """Above the ZTC point, mobility loss wins: hot current is lower."""
        i_room = self._current(NMOS_180, 1.5)
        i_hot = self._current(NMOS_180.at_temperature(125.0), 1.5)
        assert i_hot < i_room

    def test_subthreshold_current_rises_when_hot(self):
        """Below threshold, the VTO drop and Ut rise win: hot leaks more."""
        i_room = self._current(NMOS_180, 0.35)
        i_hot = self._current(NMOS_180.at_temperature(125.0), 0.35)
        assert i_hot > i_room

    def test_thermal_noise_scales_with_t(self):
        hot = NMOS_180.at_temperature(125.0)
        assert hot.thermal_noise_psd(1e-3) > NMOS_180.thermal_noise_psd(1e-3)
