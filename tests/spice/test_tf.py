"""Tests for the .TF-style DC transfer-function analysis."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, operating_point
from repro.spice.exceptions import AnalysisError
from repro.spice.tf import transfer_function


class TestLinear:
    def test_divider_gain_and_resistances(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "out", 3e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        tf = transfer_function(ckt, "Vin", "out")
        assert tf.gain == pytest.approx(0.25, rel=1e-6)
        assert tf.input_resistance == pytest.approx(4e3, rel=1e-6)
        assert tf.output_resistance == pytest.approx(750.0, rel=1e-6)

    def test_current_source_transresistance(self):
        ckt = Circuit()
        ckt.add_isource("Iin", "0", "out", 0.0)
        ckt.add_resistor("R1", "out", "0", 2e3)
        tf = transfer_function(ckt, "Iin", "out")
        assert tf.gain == pytest.approx(2e3, rel=1e-6)
        assert tf.input_resistance == pytest.approx(2e3, rel=1e-6)

    def test_vcvs_ideal_gain(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0)
        ckt.add_vcvs("E1", "out", "0", "in", "0", 10.0)
        ckt.add_resistor("RL", "out", "0", 1e3)
        tf = transfer_function(ckt, "Vin", "out")
        assert tf.gain == pytest.approx(10.0, rel=1e-6)
        assert tf.output_resistance < 1e-6  # ideal source output

    def test_capacitor_open_at_dc(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "mid", 1e-9)
        ckt.add_resistor("R2", "mid", "0", 1e3)
        ckt.add_resistor("R3", "out", "0", 1e6)
        tf = transfer_function(ckt, "Vin", "out")
        # C blocks: divider is R1 / R3
        assert tf.gain == pytest.approx(1e6 / (1e6 + 1e3), rel=1e-4)

    def test_inductor_short_at_dc(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 1.0)
        ckt.add_inductor("L1", "in", "out", 1e-6)
        ckt.add_resistor("R1", "out", "0", 1e3)
        tf = transfer_function(ckt, "Vin", "out")
        assert tf.gain == pytest.approx(1.0, rel=1e-4)


class TestNonlinear:
    def test_cs_amplifier_gain_matches_ac(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.65)
        ckt.add_resistor("RL", "vdd", "d", 20e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 10e-6, 1e-6)
        op = operating_point(ckt)
        info = op.element_info("M1")
        rout_expected = 1.0 / (1.0 / 20e3 + info["gds"])
        tf = transfer_function(ckt, "Vg", "d", x_op=op)
        assert abs(tf.gain) == pytest.approx(info["gm"] * rout_expected,
                                             rel=1e-3)
        assert tf.output_resistance == pytest.approx(rout_expected, rel=1e-3)

    def test_gate_input_resistance_is_huge(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vg", "g", "0", 0.65)
        ckt.add_resistor("RL", "vdd", "d", 20e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", NMOS_180, 10e-6, 1e-6)
        tf = transfer_function(ckt, "Vg", "d")
        assert tf.input_resistance > 1e9


class TestValidation:
    def test_ground_output_raises(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            transfer_function(ckt, "Vin", "0")

    def test_non_source_input_raises(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            transfer_function(ckt, "R", "a")
