"""Round-trip tests: Circuit -> SPICE deck -> Circuit."""

import numpy as np
import pytest

from repro.spice import Circuit, operating_point, parse_netlist
from repro.spice.models import DiodeModel, MosfetModel
from repro.spice.waveforms import PieceWiseLinear, Pulse, Sine


def roundtrip(ckt: Circuit) -> Circuit:
    return parse_netlist(ckt.to_spice())


class TestRoundTrip:
    def test_title_preserved(self):
        ckt = Circuit("my amplifier deck")
        ckt.add_resistor("R1", "a", "0", 1e3)
        ckt.add_vsource("V1", "a", "0", 1.0)
        assert roundtrip(ckt).title == "my amplifier deck"

    def test_passives_and_sources(self):
        ckt = Circuit("rlc")
        ckt.add_vsource("V1", "in", "0", 2.5, ac=1.0)
        ckt.add_resistor("R1", "in", "mid", 2.2e3)
        ckt.add_inductor("L1", "mid", "out", 1e-6)
        ckt.add_capacitor("C1", "out", "0", 4.7e-12)
        ckt.add_isource("I1", "0", "out", 1e-3)
        back = roundtrip(ckt)
        assert back["R1"].resistance == pytest.approx(2.2e3)
        assert back["L1"].inductance == pytest.approx(1e-6)
        assert back["C1"].capacitance == pytest.approx(4.7e-12)
        assert back["V1"].ac == pytest.approx(1.0)
        op_a = operating_point(ckt)
        op_b = operating_point(back)
        for node in ("in", "mid", "out"):
            assert op_b.v(node) == pytest.approx(op_a.v(node), abs=1e-9)

    def test_waveforms_preserved(self):
        ckt = Circuit("waves")
        ckt.add_vsource("Vp", "a", "0",
                        Pulse(0.1, 1.2, td=1e-9, tr=2e-9, tf=3e-9,
                              pw=4e-9, per=20e-9))
        ckt.add_vsource("Vs", "b", "0", Sine(0.9, 0.1, 1e6, td=1e-7))
        ckt.add_vsource("Vw", "c", "0",
                        PieceWiseLinear([(0.0, 0.0), (1e-6, 1.0)]))
        ckt.add_resistor("Ra", "a", "0", 1e3)
        ckt.add_resistor("Rb", "b", "0", 1e3)
        ckt.add_resistor("Rc", "c", "0", 1e3)
        back = roundtrip(ckt)
        p = back["Vp"].waveform
        assert isinstance(p, Pulse)
        assert (p.v1, p.v2, p.per) == pytest.approx((0.1, 1.2, 20e-9))
        s = back["Vs"].waveform
        assert isinstance(s, Sine) and s.freq == pytest.approx(1e6)
        w = back["Vw"].waveform
        assert isinstance(w, PieceWiseLinear)

    def test_controlled_sources(self):
        ckt = Circuit("ctl")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_vcvs("E1", "o1", "0", "in", "0", 7.5)
        ckt.add_vccs("G1", "0", "o2", "in", "0", 2e-3)
        ckt.add_resistor("R1", "o1", "0", 1e3)
        ckt.add_resistor("R2", "o2", "0", 1e3)
        back = roundtrip(ckt)
        assert back["E1"].mu == pytest.approx(7.5)
        assert back["G1"].gm == pytest.approx(2e-3)

    def test_builtin_mosfet_models(self):
        from repro.spice import NMOS_180

        ckt = Circuit("mos")
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_resistor("RL", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", NMOS_180, 10e-6, 1e-6, m=3)
        back = roundtrip(ckt)
        assert back["M1"].m == 3
        assert back["M1"].model.name == "nmos180"
        op_a, op_b = operating_point(ckt), operating_point(back)
        assert op_b.v("d") == pytest.approx(op_a.v("d"), abs=1e-9)

    def test_custom_mosfet_model_card_emitted(self):
        model = MosfetModel(name="myn", polarity=1, vto=0.6, kp=2e-4)
        ckt = Circuit("custom")
        ckt.add_vsource("Vd", "d", "0", 1.8)
        ckt.add_mosfet("M1", "d", "d", "0", "0", model, 5e-6, 0.5e-6)
        deck = ckt.to_spice()
        assert ".model myn nmos" in deck
        back = parse_netlist(deck)
        assert back["M1"].model.vto == pytest.approx(0.6)
        assert back["M1"].model.kp == pytest.approx(2e-4)

    def test_diode_model_card(self):
        ckt = Circuit("dio")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "d", 1e3)
        ckt.add_diode("D1", "d", "0",
                      model=DiodeModel(name="dx", is_=2e-15, n=1.3))
        back = roundtrip(ckt)
        assert back["D1"].model.n == pytest.approx(1.3)

    def test_flattened_subcircuit_exports(self):
        """A circuit built via add_subcircuit exports and re-parses."""
        sub = Circuit("blk")
        sub.add_resistor("R1", "in", "out", 1e3)
        top = Circuit("top")
        top.add_vsource("V1", "a", "0", 1.0)
        top.add_resistor("RL", "b", "0", 1e3)
        top.add_subcircuit("U1", sub, {"in": "a", "out": "b"})
        back = roundtrip(top)
        assert "U1.R1" in back
        assert operating_point(back).v("b") == pytest.approx(0.5, rel=1e-6)

    def test_ota_task_circuit_roundtrips(self):
        from repro.circuits.ota import build_ota
        from tests.circuits.test_ota import GOOD

        ckt = build_ota(GOOD)
        back = roundtrip(ckt)
        op_a, op_b = operating_point(ckt), operating_point(back)
        for node in ("out", "out1", "nb", "tail"):
            assert op_b.v(node) == pytest.approx(op_a.v(node), abs=1e-6)
