"""Transient analysis tests against analytic step responses."""

import numpy as np
import pytest

from repro.spice import Circuit, NMOS_180, transient_analysis
from repro.spice.waveforms import Pulse, Sine


def rc_step(r=1e3, c=1e-9, v=1.0, td=0.0):
    ckt = Circuit()
    ckt.add_vsource("Vin", "in", "0",
                    Pulse(0.0, v, td=td, tr=1e-12, tf=1e-12, pw=1.0))
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    return ckt


class TestRC:
    def test_exponential_charge(self):
        tau = 1e-6
        ckt = rc_step(r=1e3, c=1e-9)
        tr = transient_analysis(ckt, 5e-6, 5e-9)
        v = tr.v("out")
        for mult in (1.0, 2.0, 3.0):
            idx = np.argmin(np.abs(tr.times - mult * tau))
            expected = 1.0 - np.exp(-mult)
            assert v[idx] == pytest.approx(expected, abs=0.01)

    def test_be_and_trap_agree(self):
        a = transient_analysis(rc_step(), 3e-6, 5e-9, integ="trap").v("out")
        b = transient_analysis(rc_step(), 3e-6, 5e-9, integ="be").v("out")
        np.testing.assert_allclose(a, b, atol=0.02)

    def test_starts_from_dc(self):
        """With the pulse initially low, the output starts at 0."""
        tr = transient_analysis(rc_step(td=1e-6), 2e-6, 1e-8)
        assert abs(tr.v("out")[0]) < 1e-9

    def test_initial_condition_uic(self):
        ckt = Circuit()
        ckt.add_resistor("R", "out", "0", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-9, ic=1.0)
        tr = transient_analysis(ckt, 3e-6, 5e-9, use_ic=True)
        v = tr.v("out")
        idx = np.argmin(np.abs(tr.times - 1e-6))
        assert v[idx] == pytest.approx(np.exp(-1.0), abs=0.02)


class TestRL:
    def test_inductor_current_rise(self):
        """L/R step: i(t) = (V/R)(1 - exp(-t R/L))."""
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0",
                        Pulse(0.0, 1.0, td=0.0, tr=1e-12, tf=1e-12, pw=1.0))
        ckt.add_resistor("R", "in", "a", 100.0)
        ckt.add_inductor("L", "a", "0", 1e-4)
        tau = 1e-4 / 100.0
        tr = transient_analysis(ckt, 5 * tau, tau / 100)
        v_a = tr.v("a")  # v across L = V exp(-t/tau)
        idx = np.argmin(np.abs(tr.times - tau))
        assert v_a[idx] == pytest.approx(np.exp(-1.0), abs=0.02)


class TestSineSteadyState:
    def test_amplitude_preserved_well_below_pole(self):
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", Sine(0.0, 1.0, 1e5))
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-12)  # pole at 160 MHz
        tr = transient_analysis(ckt, 2e-5, 2e-8)
        v = tr.v("out")
        assert np.max(v) == pytest.approx(1.0, abs=0.02)
        assert np.min(v) == pytest.approx(-1.0, abs=0.02)


class TestNonlinearTransient:
    def test_inverter_switches(self):
        ckt = Circuit()
        ckt.add_vsource("Vdd", "vdd", "0", 1.8)
        ckt.add_vsource("Vin", "in", "0",
                        Pulse(0.0, 1.8, td=1e-9, tr=0.1e-9, tf=0.1e-9,
                              pw=5e-9))
        ckt.add_mosfet("MN", "out", "in", "0", "0", NMOS_180, 4e-6, 0.18e-6)
        ckt.add_resistor("RL", "vdd", "out", 10e3)
        ckt.add_capacitor("CL", "out", "0", 50e-15)
        tr = transient_analysis(ckt, 10e-9, 0.05e-9)
        v = tr.v("out")
        assert v[0] > 1.7                      # NMOS off initially
        mid = np.argmin(np.abs(tr.times - 4e-9))
        assert v[mid] < 0.3                    # pulled low during pulse
        assert v[-1] > 1.5                     # recovers after pulse

    def test_validation_errors(self):
        ckt = rc_step()
        with pytest.raises(ValueError):
            transient_analysis(ckt, -1.0, 1e-9)
        with pytest.raises(ValueError):
            transient_analysis(ckt, 1e-6, 2e-6)
        with pytest.raises(ValueError):
            transient_analysis(ckt, 1e-6, 1e-9, integ="rk4")


class TestEnergyConservation:
    def test_charge_balance_on_cap_divider(self):
        """Two series caps driven by a step divide the voltage by C ratio."""
        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0",
                        Pulse(0.0, 1.0, td=1e-9, tr=1e-12, tf=1e-12, pw=1.0))
        ckt.add_capacitor("C1", "in", "mid", 1e-9)
        ckt.add_capacitor("C2", "mid", "0", 3e-9)
        ckt.add_resistor("Rleak", "mid", "0", 1e9)  # keeps DC defined
        tr = transient_analysis(ckt, 10e-9, 0.05e-9)
        # right after the step: v(mid) = C1/(C1+C2) = 0.25
        idx = np.argmin(np.abs(tr.times - 2e-9))
        assert tr.v("mid")[idx] == pytest.approx(0.25, abs=0.02)
