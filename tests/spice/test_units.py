"""Unit tests for SI-suffix parsing and formatting."""

import pytest

from repro.spice import format_si, parse_si


class TestParse:
    @pytest.mark.parametrize("text,value", [
        ("2k", 2e3),
        ("2.2K", 2.2e3),
        ("1meg", 1e6),
        ("1MEG", 1e6),
        ("3.3", 3.3),
        ("100f", 1e-13),
        ("10p", 1e-11),
        ("47n", 4.7e-8),
        ("5u", 5e-6),
        ("12m", 12e-3),
        ("1g", 1e9),
        ("2t", 2e12),
        ("-4.7u", -4.7e-6),
        ("1e-12", 1e-12),
        ("1.5e3", 1.5e3),
    ])
    def test_values(self, text, value):
        assert parse_si(text) == pytest.approx(value)

    def test_m_is_milli_not_mega(self):
        assert parse_si("1m") == pytest.approx(1e-3)

    def test_trailing_unit_ignored(self):
        assert parse_si("10kohm") == pytest.approx(1e4)
        assert parse_si("100nF") == pytest.approx(1e-7)

    def test_plain_unit_letters_not_multiplier(self):
        # 'V' and 'Hz' are units, not SI prefixes.
        assert parse_si("3V") == pytest.approx(3.0)

    def test_numbers_passthrough(self):
        assert parse_si(42) == 42.0
        assert parse_si(1.5e-9) == 1.5e-9

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_si("abc")
        with pytest.raises(ValueError):
            parse_si("")


class TestFormat:
    @pytest.mark.parametrize("value,expected", [
        (2.2e-13, "220f"),
        (1e3, "1k"),
        (0.0, "0"),
        (1.5e6, "1.5meg"),
        (2.5e-5, "25u"),
    ])
    def test_values(self, value, expected):
        assert format_si(value) == expected

    def test_unit_appended(self):
        assert format_si(1e3, "Hz") == "1kHz"

    def test_roundtrip(self):
        for v in [1e-15, 3.3e-9, 4.7e-6, 2.2e3, 1.8, 6.5e8]:
            assert parse_si(format_si(v)) == pytest.approx(v, rel=1e-3)
