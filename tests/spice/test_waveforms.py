"""Unit tests for source waveforms."""

import pytest

from repro.spice.waveforms import DCWave, PieceWiseLinear, Pulse, Sine, as_waveform


class TestDC:
    def test_constant(self):
        w = DCWave(1.8)
        assert w.value(None) == 1.8
        assert w.value(0.0) == 1.8
        assert w.value(1e9) == 1.8


class TestPulse:
    def test_initial_value_before_delay(self):
        w = Pulse(0.0, 1.0, td=1e-6, tr=1e-9, tf=1e-9, pw=1e-6)
        assert w.value(0.0) == 0.0
        assert w.value(None) == 0.0

    def test_high_during_pulse(self):
        w = Pulse(0.0, 1.0, td=1e-6, tr=1e-9, tf=1e-9, pw=1e-6)
        assert w.value(1.5e-6) == pytest.approx(1.0)

    def test_linear_rise(self):
        w = Pulse(0.0, 2.0, td=0.0, tr=1e-6, tf=1e-6, pw=1e-5)
        assert w.value(0.5e-6) == pytest.approx(1.0)

    def test_linear_fall(self):
        w = Pulse(0.0, 2.0, td=0.0, tr=1e-9, tf=1e-6, pw=1e-6)
        t_mid_fall = 1e-9 + 1e-6 + 0.5e-6
        assert w.value(t_mid_fall) == pytest.approx(1.0, rel=1e-2)

    def test_back_to_v1_after_fall(self):
        w = Pulse(0.2, 1.0, td=0.0, tr=1e-9, tf=1e-9, pw=1e-6)
        assert w.value(5e-6) == pytest.approx(0.2)

    def test_periodic_repeats(self):
        w = Pulse(0.0, 1.0, td=0.0, tr=1e-9, tf=1e-9, pw=0.5e-6, per=1e-6)
        assert w.value(0.25e-6) == pytest.approx(1.0)
        assert w.value(1.25e-6) == pytest.approx(1.0)
        assert w.value(0.75e-6) == pytest.approx(0.0)

    def test_negative_timing_raises(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, td=-1e-9)

    def test_breakpoints(self):
        w = Pulse(0, 1, td=1e-6, tr=1e-7, tf=1e-7, pw=1e-6)
        bps = w.breakpoints()
        assert bps[0] == pytest.approx(1e-6)
        assert len(bps) == 4


class TestSine:
    def test_offset_before_delay(self):
        w = Sine(0.9, 0.1, 1e6, td=1e-6)
        assert w.value(0.0) == 0.9

    def test_quarter_period_peak(self):
        w = Sine(0.0, 2.0, 1e6)
        assert w.value(0.25e-6) == pytest.approx(2.0, rel=1e-9)

    def test_damping(self):
        w = Sine(0.0, 1.0, 1e6, theta=1e6)
        assert abs(w.value(2.25e-6)) < 1.0

    def test_dc_value_is_offset(self):
        assert Sine(0.5, 1.0, 1e3).dc_value() == 0.5

    def test_bad_freq_raises(self):
        with pytest.raises(ValueError):
            Sine(0, 1, 0.0)


class TestPWL:
    def test_interpolation(self):
        w = PieceWiseLinear([(0.0, 0.0), (1e-6, 1.0)])
        assert w.value(0.5e-6) == pytest.approx(0.5)

    def test_clamps_outside_range(self):
        w = PieceWiseLinear([(1e-6, 1.0), (2e-6, 2.0)])
        assert w.value(0.0) == 1.0
        assert w.value(3e-6) == 2.0

    def test_non_monotone_times_raise(self):
        with pytest.raises(ValueError):
            PieceWiseLinear([(1e-6, 0.0), (0.5e-6, 1.0)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PieceWiseLinear([])


class TestAsWaveform:
    def test_number_coerced(self):
        w = as_waveform(3.3)
        assert isinstance(w, DCWave)
        assert w.value(None) == 3.3

    def test_waveform_passthrough(self):
        w = Pulse(0, 1)
        assert as_waveform(w) is w
