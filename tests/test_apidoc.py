"""Tests for the API-reference generator."""

from repro.apidoc import MODULES, build_api_docs, document_module


class TestApidoc:
    def test_all_modules_importable_and_documented(self):
        for name in MODULES:
            lines = document_module(name)
            assert lines[0] == f"## `{name}`"

    def test_full_build_mentions_key_classes(self):
        text = build_api_docs()
        for key in ("MAOptimizer", "Circuit", "TwoStageOTA", "BayesOpt",
                    "GaussianProcess", "MLP", "PPOSizer"):
            assert key in text, key

    def test_writes_file(self, tmp_path):
        out = tmp_path / "api.md"
        build_api_docs(out)
        assert out.exists()
        assert out.read_text().startswith("# API reference")

    def test_private_names_excluded(self):
        text = build_api_docs()
        assert "_newton" not in text
        assert "### class `_" not in text
