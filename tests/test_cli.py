"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_describe_parses(self):
        args = build_parser().parse_args(["describe", "ota"])
        assert args.task == "ota"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fidelity_flag(self):
        args = build_parser().parse_args(["--fidelity", "full",
                                          "describe", "ota"])
        assert args.fidelity == "full"


class TestCommands:
    def test_describe_output(self, capsys):
        assert main(["describe", "tia"]) == 0
        out = capsys.readouterr().out
        assert "minimize power" in out
        assert "L1" in out

    def test_describe_unknown_task(self):
        with pytest.raises(SystemExit):
            main(["describe", "rfmixer"])

    def test_netlist_output(self, capsys):
        assert main(["netlist", "ota"]) == 0
        out = capsys.readouterr().out
        assert "two-stage-ota" in out
        assert "M1a" in out
        assert ".end" in out

    def test_netlist_synthetic_rejected(self):
        with pytest.raises(SystemExit):
            main(["netlist", "sphere"])

    def test_optimize_sphere(self, capsys):
        rc = main(["optimize", "sphere", "--sims", "6", "--init", "8",
                   "--method", "Random"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best FoM" in out
        assert "metrics:" in out

    def test_compare_sphere(self, capsys):
        rc = main(["compare", "sphere", "--methods", "Random,DE",
                   "--runs", "1", "--sims", "5", "--init", "8", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Algorithm" in out
        assert "Random" in out and "DE" in out
