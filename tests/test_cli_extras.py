"""Tests for the newer CLI features (corners, report)."""

import pytest

from repro.cli import main


class TestCornerFlag:
    def test_corner_accepted(self, capsys):
        assert main(["--corner", "ss", "describe", "ota"]) == 0
        out = capsys.readouterr().out
        assert "minimize power" in out

    def test_invalid_corner_rejected(self):
        with pytest.raises(SystemExit):
            main(["--corner", "typ", "describe", "ota"])


class TestReportCommand:
    def test_report_written(self, tmp_path, capsys):
        (tmp_path / "table1_ota_params.txt").write_text("BODY")
        out_file = tmp_path / "R.md"
        rc = main(["report", "--results", str(tmp_path),
                   "--output", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "BODY" in out_file.read_text()


class TestObservabilityFlags:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["optimize", "sphere", "--log-level", "debug",
             "--trace-out", "t.jsonl", "--metrics-out", "m.csv",
             "--events-out", "e.jsonl"])
        assert args.log_level == "debug"
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.csv"
        assert args.events_out == "e.jsonl"

    def test_optimize_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        rc = main(["optimize", "sphere", "--sims", "4", "--init", "6",
                   "--trace-out", str(trace)])
        assert rc == 0
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in rows}
        assert {"run", "critic-train", "actor-train", "simulate"} <= names
        out = capsys.readouterr().out
        assert "wall-time breakdown" in out
        assert "100.0" in out

    def test_optimize_metrics_and_events_out(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        rc = main(["optimize", "sphere", "--sims", "4", "--init", "6",
                   "--metrics-out", str(metrics),
                   "--events-out", str(events)])
        assert rc == 0
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["sims_total{kind=actor}"] >= 1
        rows = [json.loads(line) for line in events.read_text().splitlines()]
        assert sum(r["event"] == "evaluation" for r in rows) >= 4

    def test_compare_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        rc = main(["compare", "sphere", "--methods", "Random",
                   "--runs", "1", "--sims", "3", "--init", "6",
                   "--quiet", "--trace-out", str(trace)])
        assert rc == 0
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        assert {r["name"] for r in rows} >= {"run", "simulate"}


class TestSaveFlag:
    def test_optimize_save_roundtrip(self, tmp_path, capsys):
        from repro.core.serialize import load_result

        out = tmp_path / "run.npz"
        rc = main(["optimize", "sphere", "--sims", "4", "--init", "6",
                   "--method", "Random", "--save", str(out)])
        assert rc == 0
        loaded = load_result(out)
        assert loaded.method == "Random"
        assert loaded.n_sims == 4


class TestResilienceFlags:
    def test_fault_injected_run_with_checkpoint_and_resume(self, tmp_path,
                                                           capsys):
        ckpt = tmp_path / "ck.npz"
        rc = main(["optimize", "sphere", "--method", "MA-Opt1",
                   "--sims", "8", "--init", "8",
                   "--max-retries", "2", "--inject-faults", "0.2",
                   "--checkpoint", str(ckpt), "--checkpoint-every", "2"])
        assert rc == 0 and ckpt.exists()
        rc = main(["optimize", "sphere", "--method", "MA-Opt1",
                   "--sims", "12", "--init", "8",
                   "--max-retries", "2", "--inject-faults", "0.2",
                   "--resume", str(ckpt)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from" in out

    def test_resume_rejects_baselines(self, tmp_path):
        with pytest.raises(SystemExit, match="MA-Opt family"):
            main(["optimize", "sphere", "--method", "Random",
                  "--resume", str(tmp_path / "ck.npz")])

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(SystemExit, match="inject-faults"):
            main(["optimize", "sphere", "--inject-faults", "1.5",
                  "--sims", "4", "--init", "4"])

    def test_compare_checkpoint_dir(self, tmp_path, capsys):
        cmd = ["compare", "sphere", "--methods", "Random",
               "--runs", "1", "--sims", "4", "--init", "6",
               "--checkpoint-dir", str(tmp_path / "cmp")]
        assert main(cmd) == 0
        assert (tmp_path / "cmp" / "Random_run0.npz").exists()
        assert main(cmd) == 0  # resumes from the archive
        assert "restored from checkpoint" in capsys.readouterr().out
