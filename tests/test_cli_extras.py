"""Tests for the newer CLI features (corners, report)."""

import pytest

from repro.cli import main


class TestCornerFlag:
    def test_corner_accepted(self, capsys):
        assert main(["--corner", "ss", "describe", "ota"]) == 0
        out = capsys.readouterr().out
        assert "minimize power" in out

    def test_invalid_corner_rejected(self):
        with pytest.raises(SystemExit):
            main(["--corner", "typ", "describe", "ota"])


class TestReportCommand:
    def test_report_written(self, tmp_path, capsys):
        (tmp_path / "table1_ota_params.txt").write_text("BODY")
        out_file = tmp_path / "R.md"
        rc = main(["report", "--results", str(tmp_path),
                   "--output", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "BODY" in out_file.read_text()


class TestSaveFlag:
    def test_optimize_save_roundtrip(self, tmp_path, capsys):
        from repro.core.serialize import load_result

        out = tmp_path / "run.npz"
        rc = main(["optimize", "sphere", "--sims", "4", "--init", "6",
                   "--method", "Random", "--save", str(out)])
        assert rc == 0
        loaded = load_result(out)
        assert loaded.method == "Random"
        assert loaded.n_sims == 4
