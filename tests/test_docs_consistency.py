"""Documentation consistency: the README's claims match the repository."""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


class TestReadme:
    def test_readme_example_scripts_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), \
                match.group(0)

    def test_readme_library_snippet_runs(self):
        """The 'As a library' snippet must execute (tiny budget)."""
        from repro import MAOptConfig, MAOptimizer, TwoStageOTA

        task = TwoStageOTA(fidelity="fast")
        config = MAOptConfig.from_preset(
            "ma-opt", seed=0, critic_steps=5, actor_steps=3, batch_size=8,
            n_elite=4, hidden=(8, 8))
        result = MAOptimizer(task, config).run(n_sims=3, n_init=5)
        best = result.best_feasible() or result.best_record()
        assert best is not None
        params = task.space.denormalize(best.x)
        assert set(params) == set(task.space.names)

    def test_docs_files_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in ("spice.md", "optimizer.md", "circuits.md"):
            assert (ROOT / "docs" / name).exists()
            assert name in readme

    def test_design_and_experiments_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            text = (ROOT / name).read_text()
            assert "MA-Opt" in text

    def test_design_mentions_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("test_*.py"):
            assert bench.name in design, bench.name


class TestCliDocs:
    def test_cli_commands_in_readme_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        for args in (["describe", "ota"],
                     ["optimize", "ota", "--sims", "60"],
                     ["compare", "ota", "--runs", "2"]):
            parsed = parser.parse_args(args)
            assert parsed.command == args[0]
