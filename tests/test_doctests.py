"""Execute the runnable examples embedded in module docstrings."""

import doctest

import pytest

import repro.spice.montecarlo
import repro.spice.parser
import repro.spice.sweep
import repro.spice.units
import repro.viz

MODULES = [
    repro.spice.units,
    repro.spice.parser,
    repro.spice.sweep,
    repro.spice.montecarlo,
    repro.viz,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False,
                                      optionflags=doctest.ELLIPSIS)[0], None
    assert failures == 0
