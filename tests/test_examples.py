"""Smoke tests: every example script runs end to end at a tiny scale."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--sims", "6", "--init", "8")
        assert "best design found" in out
        assert ".end" in out  # netlist printed

    def test_ota_sizing(self):
        out = run_example("ota_sizing.py", "--sims", "6", "--init", "8",
                          "--methods", "DNN-Opt")
        assert "Algorithm comparison" in out

    def test_tia_sizing(self):
        out = run_example("tia_sizing.py", "--sims", "4", "--init", "6")
        assert "loop gain" in out

    def test_ldo_sizing(self):
        out = run_example("ldo_sizing.py", "--sims", "4", "--init", "6")
        assert "spec scorecard" in out

    def test_custom_circuit(self):
        out = run_example("custom_circuit.py", "--sims", "5", "--init", "6")
        assert "sizing:" in out

    def test_variants_comparison(self):
        out = run_example("variants_comparison.py", "--circuit", "sphere",
                          "--sims", "6", "--init", "8", "--runs", "1")
        assert "FoM convergence" in out

    def test_robustness_check(self):
        out = run_example("robustness_check.py", "--mc", "4")
        assert "corner sweep" in out
        assert "offset sigma" in out

    def test_spice_playground(self):
        out = run_example("spice_playground.py")
        assert "lint: clean" in out
        assert "differential gain" in out
