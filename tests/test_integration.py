"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro.core.config import MAOptConfig
from repro.core.ma_opt import MAOptimizer

TINY = dict(critic_steps=15, actor_steps=8, batch_size=16, n_elite=6,
            action_scale=0.15)


class TestMAOptOnRealCircuit:
    """MA-Opt driving the actual SPICE engine through the OTA task."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.circuits import TwoStageOTA

        task = TwoStageOTA(fidelity="fast")
        cfg = MAOptConfig.from_preset("ma-opt", seed=11, **TINY)
        return task, MAOptimizer(task, cfg).run(n_sims=9, n_init=12)

    def test_budget_and_records(self, result):
        task, res = result
        assert res.n_sims == 9
        for r in res.records:
            assert r.metrics.shape == (task.m + 1,)
            assert np.all(np.isfinite(r.metrics))

    def test_fom_trace_monotone(self, result):
        _, res = result
        trace = res.best_fom_trace()
        assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))

    def test_designs_in_cube(self, result):
        _, res = result
        for r in res.records:
            assert np.all(r.x >= 0.0) and np.all(r.x <= 1.0)


class TestCrossMethodProtocol:
    """All methods consume the same initial set and produce comparable
    results on a circuit task (the Table II machinery end to end)."""

    def test_mini_table_on_tia(self):
        from repro.circuits import ThreeStageTIA
        from repro.experiments import (
            comparison_table,
            make_initial_set,
            run_method,
        )

        task = ThreeStageTIA(fidelity="fast")
        x, f = make_initial_set(task, 10, seed=2)
        results = {}
        for m in ("Random", "DNN-Opt", "MA-Opt"):
            results[m] = [run_method(m, task, 5, x, f, seed=3,
                                     maopt_overrides=TINY)]
        text = comparison_table(results, task)
        assert "Random" in text and "MA-Opt" in text


class TestSeededDeterminismAcrossStack:
    def test_full_stack_determinism(self):
        """Same seeds -> identical results through NN training, SPICE
        simulation, and optimizer control flow."""
        from repro.circuits import TwoStageOTA
        from repro.experiments import make_initial_set, run_method

        task = TwoStageOTA(fidelity="fast")
        x, f = make_initial_set(task, 8, seed=5)
        a = run_method("MA-Opt", task, 4, x, f, seed=9,
                       maopt_overrides=TINY)
        b = run_method("MA-Opt", task, 4, x, f, seed=9,
                       maopt_overrides=TINY)
        np.testing.assert_allclose(a.foms, b.foms)
        for ra, rb in zip(a.records, b.records):
            np.testing.assert_allclose(ra.x, rb.x)
