"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.viz import bode_plot, line_plot, multi_line_plot


class TestLinePlot:
    def test_contains_markers_and_ranges(self):
        x = np.linspace(0, 2, 40)
        art = line_plot(x, np.sin(x), title="sine", y_label="v")
        assert "sine" in art
        assert "*" in art
        assert "v:" in art

    def test_flat_series_handled(self):
        art = line_plot(np.linspace(0, 1, 10), np.full(10, 3.0))
        assert "3" in art

    def test_monotone_series_corner_markers(self):
        x = np.linspace(0, 1, 30)
        art = line_plot(x, x)
        rows = [r for r in art.splitlines() if r.startswith("|")]
        assert rows[0].rstrip().endswith("*")   # max at the right
        assert rows[-1][1] == "*"               # min at the left

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot(np.zeros(1), np.zeros(1))
        with pytest.raises(ValueError):
            line_plot(np.zeros(5), np.zeros(4))
        with pytest.raises(ValueError):
            line_plot(np.zeros(5), np.zeros(5), width=2)


class TestMultiLine:
    def test_legend_per_series(self):
        x = np.linspace(0, 1, 20)
        art = multi_line_plot(x, {"up": x, "down": 1 - x})
        assert "a = up" in art
        assert "b = down" in art

    def test_empty_series_raise(self):
        with pytest.raises(ValueError):
            multi_line_plot(np.zeros(3), {})


class TestBode:
    def test_single_pole_plot(self):
        freqs = np.logspace(1, 7, 60)
        h = 100.0 / (1 + 1j * freqs / 1e4)
        art = bode_plot(freqs, h, title="pole")
        assert "pole" in art
        assert "phase" in art
        assert "dB" in art

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ValueError):
            bode_plot(np.array([0.0, 1.0]), np.ones(2))

    def test_real_circuit_response(self):
        from repro.spice import Circuit, ac_analysis

        ckt = Circuit()
        ckt.add_vsource("Vin", "in", "0", 0.0, ac=1.0)
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-9)
        freqs = np.logspace(3, 8, 40)
        h = ac_analysis(ckt, freqs).v("out")
        art = bode_plot(freqs, h)
        assert len(art.splitlines()) > 15
